#pragma once
// Wall-clock timing utilities.

#include <chrono>
#include <map>
#include <string>

namespace f3d {

/// Monotonic wall-clock stopwatch.
class Timer {
public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named time buckets (e.g. "flux", "spmv", "trisolve").
/// Used by the solver to report the per-phase breakdown the paper's
/// Table 3 analyses.
class PhaseTimers {
public:
  /// RAII scope: adds elapsed time to the named bucket on destruction.
  class Scope {
  public:
    Scope(PhaseTimers& owner, std::string name)
        : owner_(owner), name_(std::move(name)) {}
    ~Scope() { owner_.add(name_, t_.seconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    PhaseTimers& owner_;
    std::string name_;
    Timer t_;
  };

  void add(const std::string& name, double sec) { buckets_[name] += sec; }

  [[nodiscard]] double get(const std::string& name) const {
    auto it = buckets_.find(name);
    return it == buckets_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double total() const {
    double s = 0;
    for (const auto& [k, v] : buckets_) s += v;
    return s;
  }

  [[nodiscard]] const std::map<std::string, double>& buckets() const {
    return buckets_;
  }

  void clear() { buckets_.clear(); }

private:
  std::map<std::string, double> buckets_;
};

}  // namespace f3d
