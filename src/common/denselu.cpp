#include "common/denselu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace f3d::dense {

bool DenseLu::factor(int n, const double* a) {
  F3D_CHECK(n >= 1);
  n_ = n;
  lu_.assign(a, a + static_cast<std::size_t>(n) * n);
  piv_.resize(n);
  ok_ = true;

  for (int k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at or below row k.
    int p = k;
    double best = std::abs(lu_[static_cast<std::size_t>(k) * n + k]);
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_[static_cast<std::size_t>(i) * n + k]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv_[k] = p;
    if (best == 0.0) {
      ok_ = false;
      return false;
    }
    if (p != k)
      for (int j = 0; j < n; ++j)
        std::swap(lu_[static_cast<std::size_t>(k) * n + j],
                  lu_[static_cast<std::size_t>(p) * n + j]);
    const double inv = 1.0 / lu_[static_cast<std::size_t>(k) * n + k];
    for (int i = k + 1; i < n; ++i) {
      const double lik = lu_[static_cast<std::size_t>(i) * n + k] * inv;
      lu_[static_cast<std::size_t>(i) * n + k] = lik;
      for (int j = k + 1; j < n; ++j)
        lu_[static_cast<std::size_t>(i) * n + j] -=
            lik * lu_[static_cast<std::size_t>(k) * n + j];
    }
  }
  return true;
}

void DenseLu::solve(const double* b, double* x) const {
  F3D_CHECK_MSG(ok_, "solve on unfactored/singular DenseLu");
  const int n = n_;
  if (x != b)
    for (int i = 0; i < n; ++i) x[i] = b[i];
  // Apply row permutation.
  for (int k = 0; k < n; ++k)
    if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
  // Forward (unit L).
  for (int i = 1; i < n; ++i) {
    double s = x[i];
    for (int j = 0; j < i; ++j)
      s -= lu_[static_cast<std::size_t>(i) * n + j] * x[j];
    x[i] = s;
  }
  // Backward (U).
  for (int i = n - 1; i >= 0; --i) {
    double s = x[i];
    for (int j = i + 1; j < n; ++j)
      s -= lu_[static_cast<std::size_t>(i) * n + j] * x[j];
    x[i] = s / lu_[static_cast<std::size_t>(i) * n + i];
  }
}

}  // namespace f3d::dense
