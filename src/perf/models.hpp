#pragma once
// Analytic performance models from the paper and its companion [10]:
//  * conflict-miss bounds for SpMV under the two field layouts
//    (paper Eq. 1 and Eq. 2), plus the TLB analog;
//  * memory-traffic / bandwidth-bound Mflop/s estimates for SpMV in the
//    four format combinations (point/block x interlaced/non-interlaced),
//    the model that "clearly identifies memory bandwidth as the
//    bottleneck" (§2.2).

#include <cstdint>

namespace f3d::perf {

/// Paper Eq. 1 / Eq. 2: bound on conflict cache misses for an SpMV whose
/// working set spans `span` doubles (the matrix bandwidth beta for the
/// interlaced layout, ~N for the non-interlaced one), on a cache of
/// `cache_dw` doubles capacity with `line_dw` doubles per line, over N
/// rows. Zero when the working set fits.
std::uint64_t conflict_miss_bound(std::uint64_t rows, std::uint64_t span,
                                  std::uint64_t cache_dw,
                                  std::uint64_t line_dw);

/// TLB analog: same bound with the page-table reach (entries * page size)
/// in place of the cache and the page size in place of the line.
std::uint64_t tlb_miss_bound(std::uint64_t rows, std::uint64_t span_bytes,
                             std::uint64_t tlb_entries,
                             std::uint64_t page_bytes);

/// Inputs of the SpMV traffic model.
struct SpmvShape {
  std::uint64_t block_rows = 0;  ///< vertices
  std::uint64_t blocks = 0;      ///< block-sparsity nonzeros
  int nb = 1;                    ///< block size (1 = point CSR)
  double x_reuse = 1.0;  ///< average times each x cache line is re-fetched
                         ///< from memory (1 = perfect reuse; grows when
                         ///< the ordering is bad)
};

struct SpmvTraffic {
  double matrix_bytes = 0;  ///< values, streamed once
  double index_bytes = 0;   ///< column indices (+ row pointers)
  double vector_bytes = 0;  ///< x gathers + y writes
  [[nodiscard]] double total() const {
    return matrix_bytes + index_bytes + vector_bytes;
  }
};

/// Bytes moved from memory by one SpMV (the [10] model: matrix streamed,
/// x gathered with `x_reuse` efficiency, y written once).
SpmvTraffic spmv_traffic(const SpmvShape& shape);

/// Flops of one SpMV: 2 * nnz scalars.
double spmv_flops(const SpmvShape& shape);

/// Bandwidth-bound performance estimate in Mflop/s given a sustainable
/// memory bandwidth in MB/s: flops / (bytes / bw).
double spmv_mflops_bound(const SpmvShape& shape, double bandwidth_mbs);

/// The paper's §2.2 observation as a model: relative speedup of storing
/// the (bandwidth-bound) triangular-solve factors in single precision.
/// = traffic(double) / traffic(single) for the factor part of the stream.
double single_precision_speedup_bound(double factor_fraction_of_traffic);

}  // namespace f3d::perf
