#include "perf/machine.hpp"

#include "common/timer.hpp"
#include "perf/stream.hpp"

namespace f3d::perf {

MachineModel asci_red() {
  MachineModel m;
  m.name = "ASCI Red";
  m.max_nodes = 3072;
  m.cpus_per_node = 2;
  m.cpu_mflops_peak = 333;      // 1 flop/cycle Pentium Pro
  m.sparse_efficiency = 0.18;   // ~60 Mflop/s sustained sparse
  m.flux_efficiency = 0.26;
  m.mem_bw_mbs = 140;           // per-node sustainable
  m.net_latency_us = 15;
  m.net_bw_mbs = 310;           // 400 MB/s links, ~310 achievable
  m.allreduce_latency_us = 18;
  m.l2_bytes = 512 * 1024;      // Pentium Pro L2
  m.jitter = 0.04;              // Cougar OS era MPP noise
  return m;
}

MachineModel blue_pacific() {
  MachineModel m;
  m.name = "Blue Pacific";
  m.max_nodes = 1464;
  m.cpus_per_node = 4;
  m.cpu_mflops_peak = 664;      // 2 flops/cycle PowerPC 604e
  m.sparse_efficiency = 0.10;
  m.flux_efficiency = 0.15;
  m.mem_bw_mbs = 160;
  m.net_latency_us = 28;        // slower interconnect than Red
  m.net_bw_mbs = 150;
  m.allreduce_latency_us = 35;
  m.l2_bytes = 256 * 1024;
  m.jitter = 0.05;              // full AIX per node
  return m;
}

MachineModel cray_t3e() {
  MachineModel m;
  m.name = "Cray T3E";
  m.max_nodes = 1024;
  m.cpus_per_node = 1;
  m.cpu_mflops_peak = 1200;     // 2 flops/cycle EV5 @ 600 MHz
  m.sparse_efficiency = 0.07;
  m.flux_efficiency = 0.11;
  m.mem_bw_mbs = 600;           // streams-friendly local memory
  m.net_latency_us = 3;         // the torus: low latency, high bandwidth
  m.net_bw_mbs = 480;
  m.allreduce_latency_us = 4;
  m.l2_bytes = 96 * 1024;       // EV5 on-chip S-cache; no board cache
  m.jitter = 0.015;             // microkernel PEs: very quiet
  return m;
}

MachineModel origin2000() {
  MachineModel m;
  m.name = "Origin 2000";
  m.max_nodes = 128;
  m.cpus_per_node = 1;          // modeled per-CPU
  m.cpu_mflops_peak = 500;      // 2 flops/cycle R10000 @ 250 MHz
  m.sparse_efficiency = 0.15;
  m.flux_efficiency = 0.22;
  m.mem_bw_mbs = 300;
  m.net_latency_us = 1;         // ccNUMA
  m.net_bw_mbs = 600;
  m.allreduce_latency_us = 2;
  m.l2_bytes = 4 * 1024 * 1024; // the R10000 4 MB L2 of Table 1
  m.jitter = 0.02;
  return m;
}

std::vector<MachineModel> all_machines() {
  return {asci_red(), blue_pacific(), cray_t3e(), origin2000()};
}

namespace {
// Peak-ish flop probe: fused multiply-add chains on register data.
double probe_mflops() {
  double a0 = 1.0, a1 = 1.1, a2 = 1.2, a3 = 1.3;
  const double b = 1.0000001, c = 1e-9;
  const long iters = 20 * 1000 * 1000;
  Timer t;
  for (long i = 0; i < iters; ++i) {
    a0 = a0 * b + c;
    a1 = a1 * b + c;
    a2 = a2 * b + c;
    a3 = a3 * b + c;
  }
  const double dt = t.seconds();
  asm volatile("" : "+r"(a0), "+r"(a1), "+r"(a2), "+r"(a3));
  return dt > 0 ? 8.0 * iters / dt * 1e-6 : 1000.0;
}
}  // namespace

MachineModel host_machine(std::size_t stream_elems) {
  MachineModel m;
  m.name = "host";
  m.max_nodes = 1;
  m.cpus_per_node = 1;
  auto stream = run_stream(stream_elems, 2);
  m.mem_bw_mbs = stream.best();
  m.cpu_mflops_peak = probe_mflops();
  m.sparse_efficiency = 0.12;  // typical sparse fraction on modern OoO
  m.flux_efficiency = 0.25;
  m.net_latency_us = 0.5;      // loopback placeholders
  m.net_bw_mbs = m.mem_bw_mbs;
  m.allreduce_latency_us = 1;
  m.l2_bytes = 32 * 1024 * 1024;
  m.jitter = 0.01;
  return m;
}

}  // namespace f3d::perf
