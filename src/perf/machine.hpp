#pragma once
// Machine-parameter models of the paper's testbed platforms. Absolute
// figures are approximations reconstructed from the era's published specs
// and STREAM numbers; the parallel experiments depend on their *ratios*
// (flop rate vs. memory bandwidth vs. network), which are representative.

#include <string>
#include <vector>

namespace f3d::perf {

struct MachineModel {
  std::string name;
  int max_nodes = 0;
  int cpus_per_node = 1;
  double cpu_mflops_peak = 0;     ///< per CPU
  double sparse_efficiency = 0;   ///< sustained/peak for sparse kernels
  double flux_efficiency = 0;     ///< sustained/peak for the flux kernel
                                  ///< (instruction-scheduling-bound)
  double mem_bw_mbs = 0;          ///< per node sustainable (STREAM-like)
  double net_latency_us = 0;      ///< point-to-point
  double net_bw_mbs = 0;          ///< per node injection bandwidth
  double allreduce_latency_us = 0;  ///< per doubling step of a reduction
  double l2_bytes = 0;            ///< last-level cache per CPU
  double cache_bw_multiple = 8;   ///< cache bandwidth / memory bandwidth
  /// Run-to-run per-processor compute-time variance (OS noise, network
  /// contention, DRAM refresh) as a fraction of busy time. On thousands
  /// of nodes the max over processors is what everyone waits for at each
  /// synchronization point.
  double jitter = 0.02;

  /// Sustained per-CPU rate for memory-bandwidth-bound sparse kernels.
  [[nodiscard]] double sparse_mflops() const {
    return cpu_mflops_peak * sparse_efficiency;
  }
  /// Sustained per-CPU rate for the flux kernel.
  [[nodiscard]] double flux_mflops() const {
    return cpu_mflops_peak * flux_efficiency;
  }
};

/// ASCI Red: 2 x 333 MHz Pentium Pro per node.
MachineModel asci_red();
/// ASCI Blue Pacific: 4 x 332 MHz PowerPC 604e per node.
MachineModel blue_pacific();
/// Cray T3E-600: 1 x 600 MHz Alpha 21164 per PE, fast torus network.
MachineModel cray_t3e();
/// SGI Origin 2000: 250 MHz R10000 (used for the sequential experiments).
MachineModel origin2000();

/// All four, for sweep-style reporting.
std::vector<MachineModel> all_machines();

/// Measure THIS host: STREAM bandwidth plus a dense-kernel flop-rate
/// probe, packaged as a single-node MachineModel (network fields get
/// loopback-like placeholders). Lets the projection tools answer "what
/// would this problem do on a cluster of machines like mine".
MachineModel host_machine(std::size_t stream_elems = 4 * 1000 * 1000);

}  // namespace f3d::perf
