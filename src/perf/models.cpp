#include "perf/models.hpp"

#include "common/error.hpp"

namespace f3d::perf {

std::uint64_t conflict_miss_bound(std::uint64_t rows, std::uint64_t span,
                                  std::uint64_t cache_dw,
                                  std::uint64_t line_dw) {
  F3D_CHECK(line_dw > 0 && cache_dw > 0);
  if (span < cache_dw) return 0;
  // N * ceil((span - C) / W)  (paper Eq. 1 with span = N, Eq. 2 with
  // span = beta).
  const std::uint64_t excess = span - cache_dw;
  return rows * ((excess + line_dw - 1) / line_dw);
}

std::uint64_t tlb_miss_bound(std::uint64_t rows, std::uint64_t span_bytes,
                             std::uint64_t tlb_entries,
                             std::uint64_t page_bytes) {
  F3D_CHECK(page_bytes > 0 && tlb_entries > 0);
  const std::uint64_t reach = tlb_entries * page_bytes;
  if (span_bytes < reach) return 0;
  const std::uint64_t excess = span_bytes - reach;
  return rows * ((excess + page_bytes - 1) / page_bytes);
}

SpmvTraffic spmv_traffic(const SpmvShape& s) {
  F3D_CHECK(s.nb >= 1 && s.x_reuse >= 1.0);
  SpmvTraffic t;
  const double nnz_scalars =
      static_cast<double>(s.blocks) * s.nb * s.nb;
  t.matrix_bytes = nnz_scalars * sizeof(double);
  // Point CSR needs one column index per scalar nonzero; BAIJ needs one
  // per block — the integer-load saving of structural blocking (§2.1.2).
  const double indices = static_cast<double>(s.blocks) *
                         (s.nb == 1 ? 1.0 : 1.0) /* per block */
                         * 1.0;
  const double scalar_indices =
      s.nb == 1 ? static_cast<double>(s.blocks) : indices;
  t.index_bytes =
      (scalar_indices + static_cast<double>(s.block_rows)) * sizeof(int);
  // x: each of block_rows*nb doubles fetched x_reuse times; y written once
  // (write-allocate: read + write = 2 transfers).
  const double n_scalars = static_cast<double>(s.block_rows) * s.nb;
  t.vector_bytes =
      n_scalars * sizeof(double) * s.x_reuse + 2.0 * n_scalars * sizeof(double);
  return t;
}

double spmv_flops(const SpmvShape& s) {
  return 2.0 * static_cast<double>(s.blocks) * s.nb * s.nb;
}

double spmv_mflops_bound(const SpmvShape& s, double bandwidth_mbs) {
  F3D_CHECK(bandwidth_mbs > 0);
  const double bytes = spmv_traffic(s).total();
  const double seconds = bytes / (bandwidth_mbs * 1.0e6);
  return spmv_flops(s) / seconds * 1.0e-6;
}

double single_precision_speedup_bound(double factor_fraction_of_traffic) {
  F3D_CHECK(factor_fraction_of_traffic >= 0 &&
            factor_fraction_of_traffic <= 1);
  // Halving the factor bytes: t' = t * (1 - f/2).
  return 1.0 / (1.0 - 0.5 * factor_fraction_of_traffic);
}

}  // namespace f3d::perf
