#include "perf/stream.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace f3d::perf {

namespace {
// Defeat dead-code elimination without volatile.
void keep(double& v) { asm volatile("" : "+m"(v) : : "memory"); }
}  // namespace

double StreamResult::best() const {
  return std::max({copy_mbs, scale_mbs, add_mbs, triad_mbs});
}

StreamResult run_stream(std::size_t n, int repeats) {
  F3D_CHECK(n >= 1000 && repeats >= 1);
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
  const double s = 3.0;
  const double mb = 1.0e-6;

  StreamResult res;
  auto best_rate = [&](auto kernel, double bytes) {
    double best = 0;
    for (int r = 0; r < repeats; ++r) {
      Timer t;
      kernel();
      const double dt = t.seconds();
      keep(a[n / 2]);
      if (dt > 0) best = std::max(best, bytes * mb / dt);
    }
    return best;
  };

  res.copy_mbs = best_rate(
      [&] {
        for (std::size_t i = 0; i < n; ++i) c[i] = a[i];
      },
      2.0 * sizeof(double) * static_cast<double>(n));
  res.scale_mbs = best_rate(
      [&] {
        for (std::size_t i = 0; i < n; ++i) b[i] = s * c[i];
      },
      2.0 * sizeof(double) * static_cast<double>(n));
  res.add_mbs = best_rate(
      [&] {
        for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
      },
      3.0 * sizeof(double) * static_cast<double>(n));
  res.triad_mbs = best_rate(
      [&] {
        for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
      },
      3.0 * sizeof(double) * static_cast<double>(n));
  return res;
}

}  // namespace f3d::perf
