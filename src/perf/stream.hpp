#pragma once
// McCalpin STREAM benchmark (copy / scale / add / triad) — the paper's
// reference for "achievable memory bandwidth" (§2.2, ref [17]). Used to
// calibrate the bandwidth term of the SpMV performance model on the host.

#include <cstddef>

namespace f3d::perf {

struct StreamResult {
  double copy_mbs = 0;   ///< a[i] = b[i]
  double scale_mbs = 0;  ///< a[i] = s * b[i]
  double add_mbs = 0;    ///< a[i] = b[i] + c[i]
  double triad_mbs = 0;  ///< a[i] = b[i] + s * c[i]

  /// The paper's operative number: sustainable bandwidth for the
  /// vector-plus-scaled-vector pattern the solver kernels resemble.
  [[nodiscard]] double best() const;
};

/// Run STREAM with arrays of `n` doubles, `repeats` timed repetitions
/// (best-of). n should be several times the last-level cache.
StreamResult run_stream(std::size_t n = 8 * 1000 * 1000, int repeats = 3);

}  // namespace f3d::perf
