#pragma once
// Tiny CSV writer for benchmark series (figure data), so each bench can
// emit machine-readable output next to its human-readable table.

#include <string>
#include <vector>

namespace f3d::io {

class CsvWriter {
public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<double>& row);

  /// Write to file; throws f3d::Error on failure.
  void write(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<double>> rows_;
};

/// Binary checkpoint of a solution vector (magic + count + raw doubles).
/// Used for warm-starting analysis cycles (the paper's design-optimization
/// loop motivation: "time to reach the steady-state solution in each
/// analysis cycle is crucial").
void write_state(const std::string& path, const std::vector<double>& x);

/// Read a checkpoint written by write_state. Throws f3d::Error on a
/// missing/corrupt file.
std::vector<double> read_state(const std::string& path);

}  // namespace f3d::io
