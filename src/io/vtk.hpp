#pragma once
// Legacy-VTK (ASCII) writer for meshes and vertex-centered solution
// fields, so example runs can be inspected in ParaView/VisIt. Only the
// subset of the format needed for tetrahedral point data is emitted.

#include <string>
#include <vector>

#include "cfd/state.hpp"
#include "mesh/mesh.hpp"

namespace f3d::io {

/// A named per-vertex scalar or vector field to attach to the mesh.
struct VtkField {
  std::string name;
  int components = 1;  ///< 1 (scalar) or 3 (vector)
  std::vector<double> data;  ///< num_vertices * components, interleaved
};

/// Write mesh + fields to `path` in legacy VTK unstructured-grid format.
/// Throws f3d::Error on I/O failure.
void write_vtk(const std::string& path, const mesh::UnstructuredMesh& mesh,
               const std::vector<VtkField>& fields = {});

/// Convenience: decompose a flow state into named fields (pressure,
/// velocity for incompressible; density, momentum, energy, pressure for
/// compressible) and write them.
void write_flow_vtk(const std::string& path,
                    const mesh::UnstructuredMesh& mesh,
                    const cfd::FlowConfig& cfg, const std::vector<double>& x);

}  // namespace f3d::io
