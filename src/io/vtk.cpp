#include "io/vtk.hpp"

#include <cstdio>

#include "cfd/flux.hpp"
#include "common/error.hpp"

namespace f3d::io {

void write_vtk(const std::string& path, const mesh::UnstructuredMesh& mesh,
               const std::vector<VtkField>& fields) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  F3D_CHECK_MSG(f != nullptr, "cannot open " + path);
  const int nv = mesh.num_vertices();
  const int nt = mesh.num_tets();

  std::fprintf(f, "# vtk DataFile Version 3.0\nfun3d-repro solution\n"
                  "ASCII\nDATASET UNSTRUCTURED_GRID\n");
  std::fprintf(f, "POINTS %d double\n", nv);
  for (const auto& p : mesh.coords())
    std::fprintf(f, "%.10g %.10g %.10g\n", p[0], p[1], p[2]);

  std::fprintf(f, "CELLS %d %d\n", nt, 5 * nt);
  for (const auto& t : mesh.tets())
    std::fprintf(f, "4 %d %d %d %d\n", t[0], t[1], t[2], t[3]);
  std::fprintf(f, "CELL_TYPES %d\n", nt);
  for (int t = 0; t < nt; ++t) std::fprintf(f, "10\n");  // VTK_TETRA

  if (!fields.empty()) {
    std::fprintf(f, "POINT_DATA %d\n", nv);
    for (const auto& field : fields) {
      F3D_CHECK_MSG(static_cast<int>(field.data.size()) ==
                        nv * field.components,
                    "field size mismatch: " + field.name);
      if (field.components == 1) {
        std::fprintf(f, "SCALARS %s double 1\nLOOKUP_TABLE default\n",
                     field.name.c_str());
        for (int v = 0; v < nv; ++v)
          std::fprintf(f, "%.10g\n", field.data[v]);
      } else {
        F3D_CHECK_MSG(field.components == 3,
                      "VTK fields must have 1 or 3 components");
        std::fprintf(f, "VECTORS %s double\n", field.name.c_str());
        for (int v = 0; v < nv; ++v)
          std::fprintf(f, "%.10g %.10g %.10g\n",
                       field.data[static_cast<std::size_t>(v) * 3],
                       field.data[static_cast<std::size_t>(v) * 3 + 1],
                       field.data[static_cast<std::size_t>(v) * 3 + 2]);
      }
    }
  }
  const int rc = std::fclose(f);
  F3D_CHECK_MSG(rc == 0, "write failure on " + path);
}

void write_flow_vtk(const std::string& path,
                    const mesh::UnstructuredMesh& mesh,
                    const cfd::FlowConfig& cfg, const std::vector<double>& x) {
  const int nv = mesh.num_vertices();
  const int nb = cfg.nb();
  F3D_CHECK(static_cast<int>(x.size()) == nv * nb);

  std::vector<VtkField> fields;
  VtkField pressure{"pressure", 1, std::vector<double>(nv)};
  VtkField velocity{"velocity", 3, std::vector<double>(nv * 3)};
  for (int v = 0; v < nv; ++v) {
    const double* q = &x[static_cast<std::size_t>(v) * nb];
    pressure.data[v] = cfd::pressure(cfg, q);
    if (cfg.model == cfd::Model::kIncompressible) {
      velocity.data[static_cast<std::size_t>(v) * 3] = q[1];
      velocity.data[static_cast<std::size_t>(v) * 3 + 1] = q[2];
      velocity.data[static_cast<std::size_t>(v) * 3 + 2] = q[3];
    } else {
      const double inv_rho = 1.0 / q[0];
      velocity.data[static_cast<std::size_t>(v) * 3] = q[1] * inv_rho;
      velocity.data[static_cast<std::size_t>(v) * 3 + 1] = q[2] * inv_rho;
      velocity.data[static_cast<std::size_t>(v) * 3 + 2] = q[3] * inv_rho;
    }
  }
  fields.push_back(std::move(pressure));
  fields.push_back(std::move(velocity));
  if (cfg.model == cfd::Model::kCompressible) {
    VtkField rho{"density", 1, std::vector<double>(nv)};
    for (int v = 0; v < nv; ++v)
      rho.data[v] = x[static_cast<std::size_t>(v) * nb];
    fields.push_back(std::move(rho));
  }
  write_vtk(path, mesh, fields);
}

}  // namespace f3d::io
