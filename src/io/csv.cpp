#include "io/csv.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace f3d::io {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  F3D_CHECK(!header_.empty());
}

void CsvWriter::add_row(const std::vector<double>& row) {
  F3D_CHECK_MSG(row.size() == header_.size(), "CSV row arity mismatch");
  rows_.push_back(row);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << header_[c];
  os << "\n";
  char buf[64];
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::snprintf(buf, sizeof buf, "%.12g", row[c]);
      os << (c ? "," : "") << buf;
    }
    os << "\n";
  }
  return os.str();
}

void CsvWriter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  F3D_CHECK_MSG(f != nullptr, "cannot open " + path);
  const auto s = to_string();
  const std::size_t written = std::fwrite(s.data(), 1, s.size(), f);
  const int rc = std::fclose(f);
  F3D_CHECK_MSG(written == s.size() && rc == 0, "write failure on " + path);
}

namespace {
constexpr std::uint64_t kStateMagic = 0xf3d57a7eULL;
}  // namespace

void write_state(const std::string& path, const std::vector<double>& x) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  F3D_CHECK_MSG(f != nullptr, "cannot open " + path);
  const std::uint64_t magic = kStateMagic;
  const std::uint64_t count = x.size();
  bool ok = std::fwrite(&magic, sizeof magic, 1, f) == 1 &&
            std::fwrite(&count, sizeof count, 1, f) == 1 &&
            std::fwrite(x.data(), sizeof(double), x.size(), f) == x.size();
  ok = (std::fclose(f) == 0) && ok;
  F3D_CHECK_MSG(ok, "write failure on " + path);
}

std::vector<double> read_state(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  F3D_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::uint64_t magic = 0, count = 0;
  bool ok = std::fread(&magic, sizeof magic, 1, f) == 1 &&
            std::fread(&count, sizeof count, 1, f) == 1;
  F3D_CHECK_MSG(ok && magic == kStateMagic, "not an f3d state file: " + path);
  std::vector<double> x(count);
  ok = std::fread(x.data(), sizeof(double), count, f) == count;
  std::fclose(f);
  F3D_CHECK_MSG(ok, "truncated state file: " + path);
  return x;
}

}  // namespace f3d::io
