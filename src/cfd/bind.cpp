// FlowConfig::bind — only the performance-relevant discretization knobs
// are registered; the physics (model, Mach, alpha, order, limiter) is
// deliberately fixed, because a tuner must never change the problem it is
// timing.

#include "cfd/state.hpp"
#include "tune/registry.hpp"

namespace f3d::cfd {

void FlowConfig::bind(tune::Registry& reg, const std::string& prefix) {
  reg.add_enum(prefix + "layout", &layout, {"interlaced", "noninterlaced"},
               "field storage layout (§2.1.1, Table 1); interlaced wins on "
               "cache machines and is required by EulerProblem's solver "
               "path — bound for introspection, excluded from the default "
               "search space");
  reg.add_bool(prefix + "reco_single_precision", &reco_single_precision,
               "store second-order reconstruction operands in float "
               "(double arithmetic) — the Table 2 storage/accumulate "
               "split on the flux side");
}

}  // namespace f3d::cfd
