#include "cfd/euler.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"

namespace f3d::cfd {

namespace {
// Edges per parallel_for chunk in the colored scatter loops: small enough
// to split a color class across threads, large enough that a class on a
// small mesh runs inline.
constexpr std::int64_t kEdgeGrain = 256;
constexpr std::int64_t kVertexGrain = 1024;

using simd::Vd;

// Elementwise scatter helpers for the edge loops. The pack paths perform
// the identical per-element arithmetic as the scalar tails (no
// reassociation), so enabling SIMD does not change a single bit of the
// scatter results — the per-configuration rounding caveat only applies
// to the horizontal reductions elsewhere.

/// dst[0..n) += src[0..n)
inline void acc_arr(bool use_simd, double* dst, const double* src,
                    std::size_t n) {
  std::size_t k = 0;
  if (use_simd)
    for (; k + simd::kDoubleLanes <= n; k += simd::kDoubleLanes)
      (Vd::loadu(dst + k) + Vd::loadu(src + k)).storeu(dst + k);
  for (; k < n; ++k) dst[k] += src[k];
}

/// dst[0..n) -= src[0..n)
inline void sub_arr(bool use_simd, double* dst, const double* src,
                    std::size_t n) {
  std::size_t k = 0;
  if (use_simd)
    for (; k + simd::kDoubleLanes <= n; k += simd::kDoubleLanes)
      (Vd::loadu(dst + k) - Vd::loadu(src + k)).storeu(dst + k);
  for (; k < n; ++k) dst[k] -= src[k];
}
}  // namespace

std::shared_ptr<const SharedGeometry> SharedGeometry::compute(
    const mesh::UnstructuredMesh& mesh) {
  auto g = std::make_shared<SharedGeometry>();
  g->dual = mesh::compute_dual_metrics(mesh);
  g->stencil = sparse::stencil_from_mesh(mesh);
  g->coloring = mesh::edge_color_classes(mesh);
  g->num_vertices = mesh.num_vertices();
  return g;
}

EulerDiscretization::EulerDiscretization(
    const mesh::UnstructuredMesh& mesh, FlowConfig cfg,
    std::shared_ptr<const SharedGeometry> shared)
    : mesh_(mesh),
      cfg_(cfg),
      geom_(shared != nullptr ? std::move(shared)
                              : SharedGeometry::compute(mesh)),
      dual_(geom_->dual),
      stencil_(geom_->stencil),
      coloring_(geom_->coloring) {
  F3D_CHECK(cfg_.order == 1 || cfg_.order == 2);
  F3D_CHECK_MSG(geom_->num_vertices == mesh.num_vertices(),
                "shared geometry was computed from a different mesh");
  freestream_state(cfg_, qinf_);
}

FlowField EulerDiscretization::make_freestream_field() const {
  FlowField f(num_vertices(), nb(), cfg_.layout);
  for (int v = 0; v < num_vertices(); ++v)
    for (int c = 0; c < nb(); ++c) f.set(v, c, qinf_[c]);
  return f;
}

void EulerDiscretization::gradients(const FlowField& q,
                                    std::vector<double>& grad) const {
  F3D_OBS_SPAN("gradient");
  const int nv = num_vertices();
  const int ncomp = nb();
  grad.assign(static_cast<std::size_t>(nv) * ncomp * 3, 0.0);

  const auto& edges = mesh_.edges();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  auto& pool = exec::pool();

  // Edge-difference Green-Gauss: grad_i += 1/(2 V_i) n_ij (q_j - q_i),
  // accumulated into the SoA-blocked layout grad[(v*3 + d)*ncomp + c]:
  // all ncomp components of one direction contiguous, so at nb == 4 one
  // edge update is six pack multiply-adds (3 directions x 2 endpoints)
  // instead of 24 scalar ones. The pack path is elementwise —
  // bit-identical to the scalar path.
  // Colored scatter: classes in sequence, edges of a class in parallel.
  const bool vec4 =
      simd::enabled() && st == 1 && ncomp == simd::kDoubleLanes;
  for (int cc = 0; cc < coloring_.num_colors(); ++cc) {
    pool.parallel_for(
        coloring_.class_ptr[cc], coloring_.class_ptr[cc + 1],
        [&, vec4](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) {
            const int e = coloring_.edge[k];
            const int i = edges[e][0], j = edges[e][1];
            const auto& n = dual_.edge_normal[e];
            const std::size_t bi = q.base(i), bj = q.base(j);
            double* gi = &grad[static_cast<std::size_t>(i) * 3 * ncomp];
            double* gj = &grad[static_cast<std::size_t>(j) * 3 * ncomp];
            if (vec4) {
              const Vd dq = Vd::loadu(qd + bj) - Vd::loadu(qd + bi);
              for (int d = 0; d < 3; ++d) {
                const Vd w = Vd::broadcast(0.5 * n[d]);
                double* gid = gi + d * ncomp;
                double* gjd = gj + d * ncomp;
                (Vd::loadu(gid) + w * dq).storeu(gid);
                (Vd::loadu(gjd) + w * dq).storeu(gjd);
              }
            } else {
              for (int c = 0; c < ncomp; ++c) {
                const double dq = qd[bj + c * st] - qd[bi + c * st];
                for (int d = 0; d < 3; ++d) {
                  gi[d * ncomp + c] += 0.5 * n[d] * dq;
                  gj[d * ncomp + c] += 0.5 * n[d] * dq;
                }
              }
            }
          }
        },
        kEdgeGrain);
  }
  const bool use_simd = simd::enabled();
  pool.parallel_for(
      0, nv,
      [&, use_simd](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t v = lo; v < hi; ++v) {
          const double inv_vol = 1.0 / dual_.vertex_volume[v];
          double* gv = &grad[static_cast<std::size_t>(v) * ncomp * 3];
          const std::size_t m = static_cast<std::size_t>(ncomp) * 3;
          std::size_t k = 0;
          if (use_simd) {
            const Vd w = Vd::broadcast(inv_vol);
            for (; k + simd::kDoubleLanes <= m; k += simd::kDoubleLanes)
              (Vd::loadu(gv + k) * w).storeu(gv + k);
          }
          for (; k < m; ++k) gv[k] *= inv_vol;
        }
      },
      kVertexGrain);
}

template <class GS>
void EulerDiscretization::gradients_t(const FlowField& q,
                                      std::vector<GS>& grad) const {
  if constexpr (std::is_same_v<GS, double>) {
    gradients(q, grad);
  } else {
    // Float-storage reconstruction: accumulate in double (the scatter
    // above), then narrow once. The narrowing pass is the only place the
    // stored operands lose bits — the flux arithmetic re-promotes.
    std::vector<double> tmp;
    gradients(q, tmp);
    grad.resize(tmp.size());
    exec::pool().parallel_for(
        0, static_cast<std::int64_t>(tmp.size()),
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k)
            grad[k] = static_cast<GS>(tmp[k]);
        },
        /*grain=*/8192);
  }
}

void EulerDiscretization::limiters(const FlowField& q,
                                   const std::vector<double>& grad,
                                   std::vector<double>& phi) const {
  limiters_t<double>(q, grad, phi);
}

template <class GS>
void EulerDiscretization::limiters_t(const FlowField& q,
                                     const std::vector<GS>& grad,
                                     std::vector<GS>& phi) const {
  F3D_OBS_SPAN("limiter");
  const int nv = num_vertices();
  const int ncomp = nb();
  phi.assign(static_cast<std::size_t>(nv) * ncomp, GS(1));

  const auto& edges = mesh_.edges();
  const auto& coords = mesh_.coords();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  auto& pool = exec::pool();

  // Neighbor min/max per (vertex, component). min/max are exact, so the
  // colored scatter is deterministic for free; the coloring only provides
  // race-freedom.
  std::vector<double> qmin(static_cast<std::size_t>(nv) * ncomp),
      qmax(static_cast<std::size_t>(nv) * ncomp);
  pool.parallel_for(
      0, nv,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t v = lo; v < hi; ++v) {
          const std::size_t b = q.base(static_cast<int>(v));
          for (int c = 0; c < ncomp; ++c)
            qmin[static_cast<std::size_t>(v) * ncomp + c] =
                qmax[static_cast<std::size_t>(v) * ncomp + c] = qd[b + c * st];
        }
      },
      kVertexGrain);
  for (int cc = 0; cc < coloring_.num_colors(); ++cc) {
    pool.parallel_for(
        coloring_.class_ptr[cc], coloring_.class_ptr[cc + 1],
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) {
            const int e = coloring_.edge[k];
            const int i = edges[e][0], j = edges[e][1];
            const std::size_t bi = q.base(i), bj = q.base(j);
            for (int c = 0; c < ncomp; ++c) {
              const double qi = qd[bi + c * st], qj = qd[bj + c * st];
              auto& mni = qmin[static_cast<std::size_t>(i) * ncomp + c];
              auto& mxi = qmax[static_cast<std::size_t>(i) * ncomp + c];
              auto& mnj = qmin[static_cast<std::size_t>(j) * ncomp + c];
              auto& mxj = qmax[static_cast<std::size_t>(j) * ncomp + c];
              mni = std::min(mni, qj);
              mxi = std::max(mxi, qj);
              mnj = std::min(mnj, qi);
              mxj = std::max(mxj, qi);
            }
          }
        },
        kEdgeGrain);
  }

  // Venkatakrishnan limiter, eps^2 ~ (K^3) * cell volume (h^3 scale).
  auto venkat = [](double dplus, double d2, double eps2) {
    const double num = (dplus * dplus + eps2) * d2 + 2 * d2 * d2 * dplus;
    const double den = dplus * dplus + 2 * d2 * d2 + dplus * d2 + eps2;
    return den == 0 ? 1.0 : num / (den * d2);
  };

  for (int cc = 0; cc < coloring_.num_colors(); ++cc) {
    pool.parallel_for(
        coloring_.class_ptr[cc], coloring_.class_ptr[cc + 1],
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t k = lo; k < hi; ++k) {
            const int e = coloring_.edge[k];
            const int i = edges[e][0], j = edges[e][1];
            const double dx[3] = {coords[j][0] - coords[i][0],
                                  coords[j][1] - coords[i][1],
                                  coords[j][2] - coords[i][2]};
            const std::size_t bi = q.base(i), bj = q.base(j);
            for (int c = 0; c < ncomp; ++c) {
              // Limit both endpoints' reconstructions toward the edge
              // midpoint. Gradient reads promote GS -> double; the SoA
              // layout puts direction d of component c at g[d * ncomp].
              for (int side = 0; side < 2; ++side) {
                const int v = side == 0 ? i : j;
                const double sgn = side == 0 ? 0.5 : -0.5;
                const GS* g =
                    &grad[static_cast<std::size_t>(v) * 3 * ncomp + c];
                const double d2 =
                    sgn * (static_cast<double>(g[0]) * dx[0] +
                           static_cast<double>(g[ncomp]) * dx[1] +
                           static_cast<double>(g[2 * ncomp]) * dx[2]);
                if (d2 == 0) continue;
                const std::size_t b = side == 0 ? bi : bj;
                const double qv = qd[b + c * st];
                const double dplus =
                    d2 > 0 ? qmax[static_cast<std::size_t>(v) * ncomp + c] - qv
                           : qmin[static_cast<std::size_t>(v) * ncomp + c] - qv;
                const double k3 = cfg_.venkat_k * cfg_.venkat_k * cfg_.venkat_k;
                const double eps2 = k3 * dual_.vertex_volume[v];
                const double lim =
                    venkat(d2 > 0 ? dplus : -dplus, std::abs(d2), eps2);
                auto& p = phi[static_cast<std::size_t>(v) * ncomp + c];
                p = static_cast<GS>(std::min(static_cast<double>(p),
                                             std::max(0.0, lim)));
              }
            }
          }
        },
        kEdgeGrain);
  }
}

template <class GS>
void EulerDiscretization::interface_states_t(const FlowField& q,
                                             const std::vector<GS>& grad,
                                             const std::vector<GS>& phi,
                                             int i, int j, double* ql,
                                             double* qr) const {
  const int ncomp = nb();
  const auto& coords = mesh_.coords();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  const std::size_t bi = q.base(i), bj = q.base(j);
  const double dx[3] = {coords[j][0] - coords[i][0],
                        coords[j][1] - coords[i][1],
                        coords[j][2] - coords[i][2]};
  if (simd::enabled() && st == 1 && ncomp == simd::kDoubleLanes) {
    // SoA pack reconstruction: one promoting load per direction covers
    // all components; per-lane arithmetic matches the scalar path
    // (((gx*dx0 + gy*dx1) + gz*dx2) then * +-0.5), so this is
    // bit-identical to the loop below.
    const GS* gi = &grad[static_cast<std::size_t>(i) * 3 * ncomp];
    const GS* gj = &grad[static_cast<std::size_t>(j) * 3 * ncomp];
    const Vd b0 = Vd::broadcast(dx[0]), b1 = Vd::broadcast(dx[1]),
             b2 = Vd::broadcast(dx[2]);
    const Vd di = Vd::broadcast(0.5) *
                  ((Vd::loadu(gi) * b0 + Vd::loadu(gi + ncomp) * b1) +
                   Vd::loadu(gi + 2 * ncomp) * b2);
    const Vd dj = Vd::broadcast(-0.5) *
                  ((Vd::loadu(gj) * b0 + Vd::loadu(gj + ncomp) * b1) +
                   Vd::loadu(gj + 2 * ncomp) * b2);
    const Vd phi_i = Vd::loadu(&phi[static_cast<std::size_t>(i) * ncomp]);
    const Vd phi_j = Vd::loadu(&phi[static_cast<std::size_t>(j) * ncomp]);
    (Vd::loadu(qd + bi) + phi_i * di).storeu(ql);
    (Vd::loadu(qd + bj) + phi_j * dj).storeu(qr);
    return;
  }
  for (int c = 0; c < ncomp; ++c) {
    const GS* gi = &grad[static_cast<std::size_t>(i) * 3 * ncomp + c];
    const GS* gj = &grad[static_cast<std::size_t>(j) * 3 * ncomp + c];
    const double di =
        0.5 * ((static_cast<double>(gi[0]) * dx[0] +
                static_cast<double>(gi[ncomp]) * dx[1]) +
               static_cast<double>(gi[2 * ncomp]) * dx[2]);
    const double dj =
        -0.5 * ((static_cast<double>(gj[0]) * dx[0] +
                 static_cast<double>(gj[ncomp]) * dx[1]) +
                static_cast<double>(gj[2 * ncomp]) * dx[2]);
    ql[c] = qd[bi + c * st] +
            static_cast<double>(phi[static_cast<std::size_t>(i) * ncomp + c]) *
                di;
    qr[c] = qd[bj + c * st] +
            static_cast<double>(phi[static_cast<std::size_t>(j) * ncomp + c]) *
                dj;
  }
}

template <class GS>
void EulerDiscretization::residual_impl_t(const FlowField& q,
                                          std::vector<double>& r) const {
  const int nv = num_vertices();
  const int ncomp = nb();
  F3D_CHECK(q.num_vertices() == nv && q.nb() == ncomp);
  F3D_CHECK(q.layout() == cfg_.layout);
  r.assign(static_cast<std::size_t>(nv) * ncomp, 0.0);

  const bool second_order = cfg_.order == 2;
  std::vector<GS> grad, phi;
  if (second_order) {
    gradients_t(q, grad);
    limiters_t(q, grad, phi);
  }

  const auto& edges = mesh_.edges();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  double* out = r.data();

  F3D_OBS_SPAN("flux_scatter");
  // Flux scatter over the conflict-free color classes: within a class no
  // two edges touch a vertex, so threads write disjoint residual slots
  // and each vertex accumulates in class order regardless of thread count.
  // With an interlaced field the per-edge state copies and the +-f
  // scatter run as packs (elementwise — bit-identical to the scalar
  // loops); the flux arithmetic itself is always double.
  const bool use_simd = simd::enabled() && st == 1;
  const bool vec4 = use_simd && ncomp == simd::kDoubleLanes;
  for (int cc = 0; cc < coloring_.num_colors(); ++cc) {
    exec::pool().parallel_for(
        coloring_.class_ptr[cc], coloring_.class_ptr[cc + 1],
        [&, use_simd, vec4](std::int64_t lo, std::int64_t hi) {
          double ql[kMaxComponents], qr[kMaxComponents], f[kMaxComponents];
          for (std::int64_t k = lo; k < hi; ++k) {
            const int e = coloring_.edge[k];
            const int i = edges[e][0], j = edges[e][1];
            const double n[3] = {dual_.edge_normal[e][0],
                                 dual_.edge_normal[e][1],
                                 dual_.edge_normal[e][2]};
            const std::size_t bi = q.base(i), bj = q.base(j);
            if (second_order) {
              interface_states_t(q, grad, phi, i, j, ql, qr);
            } else if (vec4) {
              Vd::loadu(qd + bi).storeu(ql);
              Vd::loadu(qd + bj).storeu(qr);
            } else {
              for (int c = 0; c < ncomp; ++c) {
                ql[c] = qd[bi + c * st];
                qr[c] = qd[bj + c * st];
              }
            }
            rusanov_flux(cfg_, ql, qr, n, f);
            if (use_simd) {
              acc_arr(true, out + bi, f, ncomp);
              sub_arr(true, out + bj, f, ncomp);
            } else {
              for (int c = 0; c < ncomp; ++c) {
                out[bi + c * st] += f[c];
                out[bj + c * st] -= f[c];
              }
            }
          }
        },
        kEdgeGrain);
  }

  // Boundary closure (serial; boundary work is a small fraction).
  const auto& bfaces = mesh_.boundary_faces();
  double qv[kMaxComponents], f[kMaxComponents];
  for (std::size_t bf = 0; bf < bfaces.size(); ++bf) {
    const auto& face = bfaces[bf];
    const double n3[3] = {dual_.bface_normal[bf][0] / 3.0,
                          dual_.bface_normal[bf][1] / 3.0,
                          dual_.bface_normal[bf][2] / 3.0};
    for (int lv = 0; lv < 3; ++lv) {
      const int v = face.v[lv];
      const std::size_t b = q.base(v);
      for (int c = 0; c < ncomp; ++c) qv[c] = qd[b + c * st];
      if (face.tag == mesh::BoundaryTag::kWall)
        wall_flux(cfg_, qv, n3, f);
      else
        rusanov_flux(cfg_, qv, qinf_, n3, f);
      for (int c = 0; c < ncomp; ++c) r[b + c * st] += f[c];
    }
  }
}

void EulerDiscretization::residual(const FlowField& q,
                                   std::vector<double>& r) const {
  if (cfg_.order == 2 && cfg_.reco_single_precision)
    residual_impl_t<float>(q, r);
  else
    residual_impl_t<double>(q, r);
}

void EulerDiscretization::residual_threaded(const FlowField& q,
                                            std::vector<double>& r,
                                            int threads) const {
  exec::ThreadScope scope(std::max(1, threads));
  residual(q, r);
}

void EulerDiscretization::spectral_radius(const FlowField& q,
                                          std::vector<double>& sr) const {
  F3D_OBS_SPAN("spectral_radius");
  const int nv = num_vertices();
  const int ncomp = nb();
  sr.assign(nv, 0.0);
  const auto& edges = mesh_.edges();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  const bool vec4 =
      simd::enabled() && st == 1 && ncomp == simd::kDoubleLanes;
  for (int cc = 0; cc < coloring_.num_colors(); ++cc) {
    exec::pool().parallel_for(
        coloring_.class_ptr[cc], coloring_.class_ptr[cc + 1],
        [&, vec4](std::int64_t lo, std::int64_t hi) {
          double qi[kMaxComponents], qj[kMaxComponents];
          for (std::int64_t k = lo; k < hi; ++k) {
            const int e = coloring_.edge[k];
            const int i = edges[e][0], j = edges[e][1];
            const double n[3] = {dual_.edge_normal[e][0],
                                 dual_.edge_normal[e][1],
                                 dual_.edge_normal[e][2]};
            const std::size_t bi = q.base(i), bj = q.base(j);
            if (vec4) {
              Vd::loadu(qd + bi).storeu(qi);
              Vd::loadu(qd + bj).storeu(qj);
            } else {
              for (int c = 0; c < ncomp; ++c) {
                qi[c] = qd[bi + c * st];
                qj[c] = qd[bj + c * st];
              }
            }
            const double lam = std::max(max_wave_speed(cfg_, qi, n),
                                        max_wave_speed(cfg_, qj, n));
            sr[i] += lam;
            sr[j] += lam;
          }
        },
        kEdgeGrain);
  }
  const auto& bfaces = mesh_.boundary_faces();
  double qi[kMaxComponents];
  for (std::size_t bf = 0; bf < bfaces.size(); ++bf) {
    const auto& face = bfaces[bf];
    const double n3[3] = {dual_.bface_normal[bf][0] / 3.0,
                          dual_.bface_normal[bf][1] / 3.0,
                          dual_.bface_normal[bf][2] / 3.0};
    for (int lv = 0; lv < 3; ++lv) {
      const int v = face.v[lv];
      const std::size_t b = q.base(v);
      for (int c = 0; c < ncomp; ++c) qi[c] = qd[b + c * st];
      sr[v] += max_wave_speed(cfg_, qi, n3);
    }
  }
}

sparse::Bcsr<double> EulerDiscretization::allocate_jacobian() const {
  sparse::Bcsr<double> jac;
  jac.nb = nb();
  jac.nrows = stencil_.n;
  jac.ptr = stencil_.ptr;
  jac.col = stencil_.col;
  jac.val.assign(stencil_.nnz() * static_cast<std::size_t>(nb()) * nb(), 0.0);
  return jac;
}

void EulerDiscretization::jacobian(const FlowField& q,
                                   sparse::Bcsr<double>& jac) const {
  F3D_OBS_SPAN("jacobian_assembly");
  const int ncomp = nb();
  const std::size_t bsz = static_cast<std::size_t>(ncomp) * ncomp;
  F3D_CHECK(jac.nrows == stencil_.n && jac.nb == ncomp);
  std::fill(jac.val.begin(), jac.val.end(), 0.0);

  // Index of block (i, j) in the stencil, via binary search per row.
  auto block_at = [&](int i, int j) -> double* {
    const int lo = jac.ptr[i], hi = jac.ptr[i + 1];
    auto it = std::lower_bound(jac.col.begin() + lo, jac.col.begin() + hi, j);
    F3D_CHECK(it != jac.col.begin() + hi && *it == j);
    return &jac.val[static_cast<std::size_t>(it - jac.col.begin()) * bsz];
  };

  const auto& edges = mesh_.edges();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  // Edge (i, j) updates blocks (i,i), (i,j), (j,i), (j,j); two edges with
  // no shared vertex touch disjoint blocks, so the coloring makes the
  // assembly scatter race-free with class-order accumulation.
  const bool use_simd = simd::enabled();
  for (int cc = 0; cc < coloring_.num_colors(); ++cc) {
    exec::pool().parallel_for(
        coloring_.class_ptr[cc], coloring_.class_ptr[cc + 1],
        [&, use_simd](std::int64_t lo, std::int64_t hi) {
          double qi[kMaxComponents], qj[kMaxComponents];
          double dl[kMaxComponents * kMaxComponents],
              dr[kMaxComponents * kMaxComponents];
          for (std::int64_t k = lo; k < hi; ++k) {
            const int e = coloring_.edge[k];
            const int i = edges[e][0], j = edges[e][1];
            const double n[3] = {dual_.edge_normal[e][0],
                                 dual_.edge_normal[e][1],
                                 dual_.edge_normal[e][2]};
            const std::size_t bi = q.base(i), bj = q.base(j);
            for (int c = 0; c < ncomp; ++c) {
              qi[c] = qd[bi + c * st];
              qj[c] = qd[bj + c * st];
            }
            rusanov_flux_jacobian(cfg_, qi, qj, n, dl, dr);
            // Block updates are elementwise over nb*nb scalars — pack
            // strip-mined, bit-identical to the scalar loop.
            acc_arr(use_simd, block_at(i, i), dl, bsz);
            acc_arr(use_simd, block_at(i, j), dr, bsz);
            sub_arr(use_simd, block_at(j, i), dl, bsz);
            sub_arr(use_simd, block_at(j, j), dr, bsz);
          }
        },
        kEdgeGrain);
  }

  const auto& bfaces = mesh_.boundary_faces();
  double qi[kMaxComponents];
  std::vector<double> da(bsz), db(bsz);
  for (std::size_t bf = 0; bf < bfaces.size(); ++bf) {
    const auto& face = bfaces[bf];
    const double n3[3] = {dual_.bface_normal[bf][0] / 3.0,
                          dual_.bface_normal[bf][1] / 3.0,
                          dual_.bface_normal[bf][2] / 3.0};
    for (int lv = 0; lv < 3; ++lv) {
      const int v = face.v[lv];
      const std::size_t b = q.base(v);
      for (int c = 0; c < ncomp; ++c) qi[c] = qd[b + c * st];
      double* jvv = block_at(v, v);
      if (face.tag == mesh::BoundaryTag::kWall) {
        wall_flux_jacobian(cfg_, qi, n3, da.data());
        for (std::size_t k = 0; k < bsz; ++k) jvv[k] += da[k];
      } else {
        // d/dq_v of rusanov(q_v, q_inf): the left-state Jacobian.
        rusanov_flux_jacobian(cfg_, qi, qinf_, n3, da.data(), db.data());
        for (std::size_t k = 0; k < bsz; ++k) jvv[k] += da[k];
      }
    }
  }
}

double EulerDiscretization::residual_flops() const {
  // Approximate per-edge flux cost (two physical fluxes, two wave speeds,
  // the Rusanov combination), plus reconstruction when second order.
  const int ncomp = nb();
  const double per_edge =
      cfg_.model == Model::kIncompressible ? 60.0 : 100.0;
  const double reco = cfg_.order == 2 ? 14.0 * ncomp + 30.0 : 0.0;
  return static_cast<double>(mesh_.num_edges()) * (per_edge + reco) +
         static_cast<double>(mesh_.num_boundary_faces()) * 3 *
             (per_edge * 0.7);
}

}  // namespace f3d::cfd
