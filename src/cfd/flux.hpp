#pragma once
// Pointwise flux physics for both Euler models.
//
// All fluxes are through an *unnormalized* area vector n (the median-dual
// face integral), so no per-face normalization is needed in the hot loop.
// The numerical interface flux is Rusanov (local Lax-Friedrichs):
//   F(qL, qR, n) = 1/2 (F(qL,n) + F(qR,n)) - 1/2 lambda_max (qR - qL).
// The paper's FUN3D uses a characteristics-based upwind scheme; Rusanov
// exercises the identical data-motion pattern (the performance object of
// study) and admits a compact analytic Jacobian for the first-order
// preconditioner matrix, which is what §2.4.1 prescribes ("the
// preconditioner matrix is always built out of a first-order analytical
// Jacobian"). Substitution recorded in DESIGN.md.

#include <array>

#include "cfd/state.hpp"

namespace f3d::cfd {

inline constexpr int kMaxComponents = 5;

/// Analytic flux F(q, n); q and f have cfg.nb() entries.
void physical_flux(const FlowConfig& cfg, const double* q, const double n[3],
                   double* f);

/// Max wave speed |Theta| + c*|n| of state q through area vector n
/// (the Rusanov dissipation coefficient and timestep spectral radius).
double max_wave_speed(const FlowConfig& cfg, const double* q,
                      const double n[3]);

/// Rusanov interface flux.
void rusanov_flux(const FlowConfig& cfg, const double* ql, const double* qr,
                  const double n[3], double* f);

/// Analytic Jacobian A = dF/dq (row-major nb x nb) of the physical flux.
void flux_jacobian(const FlowConfig& cfg, const double* q, const double n[3],
                   double* a);

/// Jacobian of the Rusanov flux w.r.t. left and right states with frozen
/// dissipation coefficient (the "first-order analytical Jacobian"
/// approximation): dF/dqL = 1/2 A(qL) + 1/2 lambda I,
///                 dF/dqR = 1/2 A(qR) - 1/2 lambda I.
void rusanov_flux_jacobian(const FlowConfig& cfg, const double* ql,
                           const double* qr, const double n[3], double* dl,
                           double* dr);

/// Slip-wall flux: pressure force only, no mass/energy flux.
void wall_flux(const FlowConfig& cfg, const double* q, const double n[3],
               double* f);

/// Jacobian of the slip-wall flux w.r.t. the interior state.
void wall_flux_jacobian(const FlowConfig& cfg, const double* q,
                        const double n[3], double* a);

/// Freestream state for the configured flow (unit speed incompressible;
/// rho = 1, a = 1 compressible).
void freestream_state(const FlowConfig& cfg, double* q);

/// Pressure of a state (p itself for incompressible).
double pressure(const FlowConfig& cfg, const double* q);

}  // namespace f3d::cfd
