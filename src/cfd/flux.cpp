#include "cfd/flux.hpp"

#include <cmath>

#include "common/error.hpp"

namespace f3d::cfd {

namespace {

// Incompressible (artificial compressibility) state: q = (p, u, v, w).
void incompressible_flux(double beta, const double* q, const double n[3],
                         double* f) {
  const double theta = q[1] * n[0] + q[2] * n[1] + q[3] * n[2];
  f[0] = beta * theta;
  f[1] = q[1] * theta + q[0] * n[0];
  f[2] = q[2] * theta + q[0] * n[1];
  f[3] = q[3] * theta + q[0] * n[2];
}

// Compressible conservative state: q = (rho, mx, my, mz, E).
void compressible_flux(double gamma, const double* q, const double n[3],
                       double* f) {
  const double inv_rho = 1.0 / q[0];
  const double u = q[1] * inv_rho, v = q[2] * inv_rho, w = q[3] * inv_rho;
  const double theta = u * n[0] + v * n[1] + w * n[2];
  const double p = (gamma - 1.0) * (q[4] - 0.5 * q[0] * (u * u + v * v + w * w));
  f[0] = q[0] * theta;
  f[1] = q[1] * theta + p * n[0];
  f[2] = q[2] * theta + p * n[1];
  f[3] = q[3] * theta + p * n[2];
  f[4] = (q[4] + p) * theta;
}

}  // namespace

double pressure(const FlowConfig& cfg, const double* q) {
  if (cfg.model == Model::kIncompressible) return q[0];
  const double inv_rho = 1.0 / q[0];
  return (cfg.gamma - 1.0) *
         (q[4] - 0.5 * inv_rho * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]));
}

void physical_flux(const FlowConfig& cfg, const double* q, const double n[3],
                   double* f) {
  if (cfg.model == Model::kIncompressible)
    incompressible_flux(cfg.beta, q, n, f);
  else
    compressible_flux(cfg.gamma, q, n, f);
}

double max_wave_speed(const FlowConfig& cfg, const double* q,
                      const double n[3]) {
  const double nmag2 = n[0] * n[0] + n[1] * n[1] + n[2] * n[2];
  if (cfg.model == Model::kIncompressible) {
    const double theta = q[1] * n[0] + q[2] * n[1] + q[3] * n[2];
    // Eigenvalues of the artificial-compressibility system:
    // theta, theta +/- sqrt(theta^2 + beta |n|^2).
    return std::abs(theta) + std::sqrt(theta * theta + cfg.beta * nmag2);
  }
  const double inv_rho = 1.0 / q[0];
  const double u = q[1] * inv_rho, v = q[2] * inv_rho, w = q[3] * inv_rho;
  const double theta = u * n[0] + v * n[1] + w * n[2];
  const double p =
      (cfg.gamma - 1.0) * (q[4] - 0.5 * q[0] * (u * u + v * v + w * w));
  const double c2 = cfg.gamma * p * inv_rho;
  // Guard against transient negative pressure during strong updates.
  const double c = std::sqrt(c2 > 0 ? c2 : 0.0);
  return std::abs(theta) + c * std::sqrt(nmag2);
}

void rusanov_flux(const FlowConfig& cfg, const double* ql, const double* qr,
                  const double n[3], double* f) {
  const int nb = cfg.nb();
  double fl[kMaxComponents], fr[kMaxComponents];
  physical_flux(cfg, ql, n, fl);
  physical_flux(cfg, qr, n, fr);
  const double lam =
      std::max(max_wave_speed(cfg, ql, n), max_wave_speed(cfg, qr, n));
  for (int c = 0; c < nb; ++c)
    f[c] = 0.5 * (fl[c] + fr[c]) - 0.5 * lam * (qr[c] - ql[c]);
}

void flux_jacobian(const FlowConfig& cfg, const double* q, const double n[3],
                   double* a) {
  if (cfg.model == Model::kIncompressible) {
    const double beta = cfg.beta;
    const double u = q[1], v = q[2], w = q[3];
    const double theta = u * n[0] + v * n[1] + w * n[2];
    // Rows: (p, u, v, w); d/d(p, u, v, w).
    const double rows[16] = {
        0,    beta * n[0],     beta * n[1],     beta * n[2],
        n[0], theta + u * n[0], u * n[1],        u * n[2],
        n[1], v * n[0],        theta + v * n[1], v * n[2],
        n[2], w * n[0],        w * n[1],        theta + w * n[2]};
    for (int i = 0; i < 16; ++i) a[i] = rows[i];
    return;
  }
  const double g1 = cfg.gamma - 1.0;
  const double inv_rho = 1.0 / q[0];
  const double u[3] = {q[1] * inv_rho, q[2] * inv_rho, q[3] * inv_rho};
  const double theta = u[0] * n[0] + u[1] * n[1] + u[2] * n[2];
  const double ke = 0.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
  const double p = g1 * (q[4] - q[0] * ke);
  const double h = (q[4] + p) * inv_rho;  // total enthalpy

  // Row 0: mass.
  a[0] = 0;
  a[1] = n[0];
  a[2] = n[1];
  a[3] = n[2];
  a[4] = 0;
  // Rows 1..3: momentum i.
  for (int i = 0; i < 3; ++i) {
    double* row = a + (i + 1) * 5;
    row[0] = g1 * ke * n[i] - u[i] * theta;
    for (int j = 0; j < 3; ++j)
      row[1 + j] = u[i] * n[j] - g1 * u[j] * n[i] + (i == j ? theta : 0.0);
    row[4] = g1 * n[i];
  }
  // Row 4: energy.
  {
    double* row = a + 4 * 5;
    row[0] = (g1 * ke - h) * theta;
    for (int j = 0; j < 3; ++j) row[1 + j] = h * n[j] - g1 * u[j] * theta;
    row[4] = cfg.gamma * theta;
  }
}

void rusanov_flux_jacobian(const FlowConfig& cfg, const double* ql,
                           const double* qr, const double n[3], double* dl,
                           double* dr) {
  const int nb = cfg.nb();
  flux_jacobian(cfg, ql, n, dl);
  flux_jacobian(cfg, qr, n, dr);
  const double lam =
      std::max(max_wave_speed(cfg, ql, n), max_wave_speed(cfg, qr, n));
  for (int i = 0; i < nb * nb; ++i) {
    dl[i] *= 0.5;
    dr[i] *= 0.5;
  }
  for (int i = 0; i < nb; ++i) {
    dl[i * nb + i] += 0.5 * lam;
    dr[i * nb + i] -= 0.5 * lam;
  }
}

void wall_flux(const FlowConfig& cfg, const double* q, const double n[3],
               double* f) {
  const double p = pressure(cfg, q);
  f[0] = 0;
  f[1] = p * n[0];
  f[2] = p * n[1];
  f[3] = p * n[2];
  if (cfg.model == Model::kCompressible) f[4] = 0;
}

void wall_flux_jacobian(const FlowConfig& cfg, const double* q,
                        const double n[3], double* a) {
  const int nb = cfg.nb();
  for (int i = 0; i < nb * nb; ++i) a[i] = 0;
  if (cfg.model == Model::kIncompressible) {
    // p is the first unknown: d(p n_i)/dp = n_i.
    a[1 * nb + 0] = n[0];
    a[2 * nb + 0] = n[1];
    a[3 * nb + 0] = n[2];
    return;
  }
  const double g1 = cfg.gamma - 1.0;
  const double inv_rho = 1.0 / q[0];
  const double u[3] = {q[1] * inv_rho, q[2] * inv_rho, q[3] * inv_rho};
  const double ke = 0.5 * (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]);
  // dp/dq = (g1*ke, -g1*u, -g1*v, -g1*w, g1).
  const double dp[5] = {g1 * ke, -g1 * u[0], -g1 * u[1], -g1 * u[2], g1};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 5; ++j) a[(i + 1) * nb + j] = n[i] * dp[j];
}

void freestream_state(const FlowConfig& cfg, double* q) {
  const double alpha = cfg.alpha_deg * M_PI / 180.0;
  if (cfg.model == Model::kIncompressible) {
    q[0] = 0.0;  // gauge pressure
    q[1] = std::cos(alpha);
    q[2] = 0.0;
    q[3] = std::sin(alpha);
    return;
  }
  // rho = 1, p chosen so the sound speed is 1 -> speed = Mach.
  const double p = 1.0 / cfg.gamma;
  const double speed = cfg.mach;
  const double u = speed * std::cos(alpha);
  const double w = speed * std::sin(alpha);
  q[0] = 1.0;
  q[1] = u;
  q[2] = 0.0;
  q[3] = w;
  q[4] = p / (cfg.gamma - 1.0) + 0.5 * (u * u + w * w);
}

}  // namespace f3d::cfd
