#pragma once
// Flow model configuration and layout-aware field storage.
//
// Two Euler models, matching the paper's two workloads:
//  * incompressible (artificial compressibility): 4 unknowns per vertex
//    (p, u, v, w)  — 22,677 vertices -> 90,708 DOFs as in Table 1;
//  * compressible: 5 conservative unknowns (rho, rho*u, rho*v, rho*w, E)
//    — 113,385 DOFs at the same vertex count.
//
// FlowField hides the interlaced / non-interlaced storage decision behind
// (vertex, component) accessors; hot kernels instead fetch (base, stride)
// once per vertex so the two layouts run the identical instruction mix and
// differ only in memory behaviour — exactly the paper's §2.1.1 experiment.

#include <string>
#include <vector>

#include "common/error.hpp"
#include "sparse/layout.hpp"

namespace f3d::tune {
class Registry;
}

namespace f3d::cfd {

enum class Model {
  kIncompressible,  ///< artificial compressibility, nb = 4
  kCompressible,    ///< ideal-gas Euler, nb = 5
};

constexpr int num_components(Model m) {
  return m == Model::kIncompressible ? 4 : 5;
}

struct FlowConfig {
  Model model = Model::kIncompressible;
  double beta = 4.0;        ///< artificial compressibility parameter
  double gamma = 1.4;       ///< ratio of specific heats (compressible)
  double mach = 0.3;        ///< freestream Mach number (compressible)
  double alpha_deg = 2.0;   ///< angle of attack, degrees
  int order = 2;            ///< spatial order of the flux (1 or 2)
  double venkat_k = 5.0;    ///< Venkatakrishnan limiter strength
  sparse::FieldLayout layout = sparse::FieldLayout::kInterlaced;
  /// Store the second-order reconstruction operands (gradients + limiter
  /// values) in float. Arithmetic stays double (promote-on-load, the
  /// Table 2 storage/accumulate split); halves reconstruction memory
  /// traffic at the cost of float rounding in the stored operands.
  bool reco_single_precision = false;

  [[nodiscard]] int nb() const { return num_components(model); }

  /// Register the performance-only discretization knobs (field layout,
  /// reconstruction-operand precision — Tables 1-2) into the flat tuning
  /// space under `prefix`. Physics parameters (model, Mach, alpha, order)
  /// are deliberately NOT knobs: tuning must not change the problem. The
  /// registry borrows this struct: it must outlive the registry.
  void bind(tune::Registry& reg, const std::string& prefix = "flow.");
};

/// Scalar state vector of nb components per vertex in a chosen layout.
class FlowField {
public:
  FlowField() = default;
  FlowField(int num_vertices, int nb, sparse::FieldLayout layout)
      : nv_(num_vertices),
        nb_(nb),
        layout_(layout),
        data_(static_cast<std::size_t>(num_vertices) * nb, 0.0) {}

  [[nodiscard]] int num_vertices() const { return nv_; }
  [[nodiscard]] int nb() const { return nb_; }
  [[nodiscard]] sparse::FieldLayout layout() const { return layout_; }

  [[nodiscard]] double get(int v, int c) const {
    return data_[sparse::field_index(layout_, nv_, nb_, v, c)];
  }
  void set(int v, int c, double val) {
    data_[sparse::field_index(layout_, nv_, nb_, v, c)] = val;
  }

  /// Hot-loop access: element (v, c) lives at data()[base(v) + c*stride()].
  [[nodiscard]] std::size_t base(int v) const {
    return layout_ == sparse::FieldLayout::kInterlaced
               ? static_cast<std::size_t>(v) * nb_
               : static_cast<std::size_t>(v);
  }
  [[nodiscard]] std::size_t stride() const {
    return layout_ == sparse::FieldLayout::kInterlaced
               ? 1
               : static_cast<std::size_t>(nv_);
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  /// Copy into the other layout.
  [[nodiscard]] FlowField as_layout(sparse::FieldLayout to) const {
    FlowField out(nv_, nb_, to);
    out.data_ = sparse::convert_layout(data_, layout_, to, nv_, nb_);
    return out;
  }

private:
  int nv_ = 0;
  int nb_ = 0;
  sparse::FieldLayout layout_ = sparse::FieldLayout::kInterlaced;
  std::vector<double> data_;
};

}  // namespace f3d::cfd
