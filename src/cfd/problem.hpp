#pragma once
// Adapter presenting the Euler discretization as a solver::NonlinearProblem
// for the psi-NKS driver, including the paper's first->second order
// discretization switchover (§2.4.1: "we normally reduce the first two to
// four orders of residual norm with the first-order discretization, then
// switch to second").

#include "cfd/euler.hpp"
#include "solver/newton.hpp"

namespace f3d::cfd {

class EulerProblem final : public solver::NonlinearProblem {
public:
  /// `disc` must use the interlaced layout (the solver's native order) and
  /// must outlive the problem.
  /// `switch_to_second_at`: residual ratio below which the flux switches
  /// from first to second order. 0 = second order from the start (the
  /// paper's choice for shock-free flows); a negative value = stay first
  /// order throughout.
  explicit EulerProblem(EulerDiscretization& disc,
                        double switch_to_second_at = 0.0);

  [[nodiscard]] int num_vertices() const override {
    return disc_.num_vertices();
  }
  [[nodiscard]] int nb() const override { return disc_.nb(); }

  void residual(const std::vector<double>& x, std::vector<double>& r) override;

  [[nodiscard]] sparse::Bcsr<double> allocate_jacobian() const override {
    return disc_.allocate_jacobian();
  }
  void jacobian(const std::vector<double>& x,
                sparse::Bcsr<double>& jac) override;

  void timestep_scale(const std::vector<double>& x,
                      std::vector<double>& vol_over_sr) override;

  void cell_volumes(std::vector<double>& vol) const override {
    vol = disc_.dual().vertex_volume;
  }

  void on_step(int step, double residual_ratio) override;

  /// SDC watchdog hook: finite everywhere, and (compressible) positive
  /// density and pressure — the vertex-parallel scan in admissibility.hpp.
  [[nodiscard]] bool admissible(const std::vector<double>& x) const override;

  [[nodiscard]] const EulerDiscretization& discretization() const {
    return disc_;
  }
  /// Initial state: freestream everywhere.
  [[nodiscard]] std::vector<double> initial_state() const;

private:
  void load(const std::vector<double>& x);

  EulerDiscretization& disc_;
  double switch_to_second_at_;
  FlowField field_;
};

}  // namespace f3d::cfd
