#pragma once
// Post-step physical-admissibility scan — the numerical health watchdog's
// cheapest layer. A silent bit flip that lands in the state vector often
// produces values that are finite (so no NaN guard fires) but physically
// impossible: negative density, negative pressure, or magnitudes far
// outside anything the flow can reach. Scanning after every accepted
// pseudo-timestep bounds how long such corruption can steer the solve.
//
// What counts as inadmissible:
//  * any non-finite component (both models);
//  * compressible only: rho <= 0 or p = (gamma-1)(E - |rho u|^2/(2 rho))
//    <= 0. The incompressible model's artificial-compressibility pressure
//    is a gauge pressure with no positivity constraint, so only the
//    finiteness check applies there — this keeps the scan free of false
//    positives on legitimate flows (a bench_sdc acceptance criterion).
//
// The scan is vertex-parallel on the exec pool. Its outputs (violation
// count, minimum bad vertex id) are order-independent integer reductions,
// so the verdict is bit-identical for any thread count.

#include <vector>

#include "cfd/state.hpp"

namespace f3d::cfd {

struct AdmissibilityReport {
  long long violations = 0;   ///< vertices failing any check
  int first_bad_vertex = -1;  ///< smallest offending vertex id, -1 if clean
  [[nodiscard]] bool ok() const { return violations == 0; }
};

/// Scan `x` (interlaced, cfg.nb() components per vertex — the psi-NKS
/// driver's native state layout) for physically inadmissible vertices.
/// Violations are tallied process-wide as "cfd.admissibility_violations".
AdmissibilityReport scan_admissibility(const FlowConfig& cfg, const double* x,
                                       int num_vertices);

inline AdmissibilityReport scan_admissibility(const FlowConfig& cfg,
                                              const std::vector<double>& x) {
  return scan_admissibility(cfg, x.data(),
                            static_cast<int>(x.size()) / cfg.nb());
}

}  // namespace f3d::cfd
