#include "cfd/problem.hpp"

#include <algorithm>

#include "cfd/admissibility.hpp"
#include "common/error.hpp"
#include "guard/guard.hpp"

namespace f3d::cfd {

EulerProblem::EulerProblem(EulerDiscretization& disc,
                           double switch_to_second_at)
    : disc_(disc),
      switch_to_second_at_(switch_to_second_at),
      field_(disc.num_vertices(), disc.nb(), sparse::FieldLayout::kInterlaced) {
  F3D_CHECK_MSG(disc.config().layout == sparse::FieldLayout::kInterlaced,
                "EulerProblem requires interlaced layout");
  if (switch_to_second_at_ > 0.0 || switch_to_second_at_ < 0.0)
    disc_.config().order = 1;  // start first order; maybe switch later
}

void EulerProblem::load(const std::vector<double>& x) {
  F3D_CHECK(static_cast<int>(x.size()) == num_unknowns());
  field_.data() = x;
}

void EulerProblem::residual(const std::vector<double>& x,
                            std::vector<double>& r) {
  // Cooperative cancellation boundary: flux evaluation is the dominant
  // cost class, so a tripped guard abandons it before any work — this is
  // what makes cancellation latency deterministic even when the kernels
  // below run serially (no parallel_for poll to hit).
  guard::poll_cancellation();
  load(x);
  disc_.residual(field_, r);
}

void EulerProblem::jacobian(const std::vector<double>& x,
                            sparse::Bcsr<double>& jac) {
  guard::poll_cancellation();
  load(x);
  disc_.jacobian(field_, jac);
}

void EulerProblem::timestep_scale(const std::vector<double>& x,
                                  std::vector<double>& vol_over_sr) {
  load(x);
  std::vector<double> sr;
  disc_.spectral_radius(field_, sr);
  const auto& vol = disc_.dual().vertex_volume;
  vol_over_sr.resize(sr.size());
  for (std::size_t v = 0; v < sr.size(); ++v) {
    F3D_CHECK(sr[v] > 0);
    vol_over_sr[v] = vol[v] / sr[v];
  }
}

void EulerProblem::on_step(int /*step*/, double residual_ratio) {
  if (switch_to_second_at_ > 0.0 && disc_.config().order == 1 &&
      residual_ratio < switch_to_second_at_) {
    disc_.config().order = 2;
  }
}

bool EulerProblem::admissible(const std::vector<double>& x) const {
  return scan_admissibility(disc_.config(), x.data(), num_vertices()).ok();
}

std::vector<double> EulerProblem::initial_state() const {
  auto f = disc_.make_freestream_field();
  return f.data();
}

}  // namespace f3d::cfd
