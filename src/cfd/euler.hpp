#pragma once
// Edge-based median-dual finite-volume discretization of the Euler
// equations — the reimplementation of the paper's FUN3D workload.
//
// The residual at vertex i is the net flux out of its dual cell:
//   r_i = sum_{edges (i,j)} F(q_i, q_j, n_ij) + boundary fluxes.
// First-order uses vertex states directly; second-order reconstructs the
// interface states with Green-Gauss gradients and a Venkatakrishnan
// limiter (the paper's "flux-limited" convection scheme; §2.4.1's
// first/second-order switch is FlowConfig::order).
//
// The analytic first-order Jacobian (frozen-coefficient Rusanov) feeds the
// Schwarz/ILU preconditioner exactly as the paper prescribes; the true
// Jacobian action for Newton-Krylov is matrix-free (finite differencing
// of this residual), see solver/.

#include <memory>
#include <vector>

#include "cfd/flux.hpp"
#include "cfd/state.hpp"
#include "mesh/dual.hpp"
#include "mesh/mesh.hpp"
#include "mesh/ordering.hpp"
#include "sparse/assembly.hpp"
#include "sparse/csr.hpp"

namespace f3d::cfd {

/// Flow-independent geometry of a discretization: the dual-mesh metrics,
/// the Jacobian coupling stencil, and the conflict-free edge coloring.
/// All three depend only on the (ordered) mesh, never on the flow
/// condition, so a batch of scenarios solving different Mach x AoA cases
/// on the same mesh can compute them once and share them immutably —
/// the fleet layer's shared-artifact contract (src/fleet/service.hpp).
struct SharedGeometry {
  mesh::DualMetrics dual;
  sparse::Stencil stencil;
  mesh::EdgeColoring coloring;
  int num_vertices = 0;  ///< of the producing mesh (validated on reuse)

  /// Compute from `mesh`, which must not be re-permuted afterwards.
  [[nodiscard]] static std::shared_ptr<const SharedGeometry> compute(
      const mesh::UnstructuredMesh& mesh);
};

class EulerDiscretization {
public:
  /// Borrows the mesh; the mesh must outlive the discretization and must
  /// not be re-permuted afterwards (metrics are cached). When `shared`
  /// is given it must have been computed from this exact mesh (vertex
  /// count is validated; the caller owns the stronger same-mesh claim)
  /// and the geometry pass is skipped entirely — per-scenario
  /// construction cost drops to the freestream state.
  EulerDiscretization(const mesh::UnstructuredMesh& mesh, FlowConfig cfg,
                      std::shared_ptr<const SharedGeometry> shared = nullptr);

  [[nodiscard]] const FlowConfig& config() const { return cfg_; }
  /// Mutable access for parameter continuation (e.g. first -> second
  /// order switchover during a run).
  FlowConfig& config() { return cfg_; }

  [[nodiscard]] const mesh::UnstructuredMesh& mesh() const { return mesh_; }
  [[nodiscard]] const mesh::DualMetrics& dual() const { return dual_; }
  [[nodiscard]] int nb() const { return cfg_.nb(); }
  [[nodiscard]] int num_vertices() const { return mesh_.num_vertices(); }
  [[nodiscard]] int num_unknowns() const { return num_vertices() * nb(); }

  /// Freestream-initialized field in the configured layout.
  [[nodiscard]] FlowField make_freestream_field() const;

  /// Steady residual r(q), same layout as q. Second-order if
  /// config().order == 2. Runs on the f3d::exec pool: the edge scatter
  /// processes the cached conflict-free color classes sequentially with
  /// the edges of each class in parallel, so the result is bit-identical
  /// for any thread count (each vertex receives at most one contribution
  /// per class — the accumulation order is the class order).
  void residual(const FlowField& q, std::vector<double>& r) const;

  /// residual() under a temporary exec-pool size (resizes the pool for
  /// the call — benches sweeping thread counts should prefer an outer
  /// exec::ThreadScope around plain residual() calls).
  void residual_threaded(const FlowField& q, std::vector<double>& r,
                         int threads) const;

  /// The cached edge coloring driving the parallel scatters.
  [[nodiscard]] const mesh::EdgeColoring& edge_coloring() const {
    return coloring_;
  }

  /// Per-vertex spectral radius sum_faces (|Theta| + c |n|), for the local
  /// pseudo-timestep dt_i = CFL * V_i / sr_i.
  void spectral_radius(const FlowField& q, std::vector<double>& sr) const;

  /// Vertex coupling stencil (self + neighbors) of the first-order
  /// Jacobian.
  [[nodiscard]] const sparse::Stencil& stencil() const { return stencil_; }

  /// Allocate the block Jacobian with the right sparsity (values zero).
  [[nodiscard]] sparse::Bcsr<double> allocate_jacobian() const;

  /// Fill the analytic first-order Jacobian dr/dq at state q into `jac`
  /// (allocated by allocate_jacobian). Always interlaced block layout.
  void jacobian(const FlowField& q, sparse::Bcsr<double>& jac) const;

  /// Green-Gauss gradients in the SoA-blocked layout:
  /// grad[(v*3 + d)*nb + c] = d q_c / d x_d at vertex v — the nb
  /// components of one direction are contiguous, which is the shape the
  /// SIMD reconstruction wants (one pack load per direction at nb == 4).
  /// Exposed for tests.
  void gradients(const FlowField& q, std::vector<double>& grad) const;

  /// Venkatakrishnan limiter values per (vertex, component) given the
  /// gradients. 1 = unlimited. Exposed for tests.
  void limiters(const FlowField& q, const std::vector<double>& grad,
                std::vector<double>& phi) const;

  /// Approximate floating-point work of one residual() call (for Gflop/s
  /// reporting in the parallel experiments).
  [[nodiscard]] double residual_flops() const;

  /// The shared flow-independent geometry this discretization reads
  /// (owned here when constructed without one; pass it to further
  /// discretizations on the same mesh to share it).
  [[nodiscard]] const std::shared_ptr<const SharedGeometry>& geometry() const {
    return geom_;
  }

private:
  const mesh::UnstructuredMesh& mesh_;
  FlowConfig cfg_;
  // geom_ must precede the references below (initialization order).
  std::shared_ptr<const SharedGeometry> geom_;
  const mesh::DualMetrics& dual_;
  const sparse::Stencil& stencil_;
  const mesh::EdgeColoring& coloring_;
  double qinf_[kMaxComponents];

  // The second-order path is templated on the reconstruction-operand
  // storage scalar GS (double, or float when
  // config().reco_single_precision): gradients and limiter values are
  // *stored* as GS and promoted to double on load, so the flux
  // arithmetic itself never narrows (definitions in euler.cpp).
  template <class GS>
  void residual_impl_t(const FlowField& q, std::vector<double>& r) const;
  template <class GS>
  void gradients_t(const FlowField& q, std::vector<GS>& grad) const;
  template <class GS>
  void limiters_t(const FlowField& q, const std::vector<GS>& grad,
                  std::vector<GS>& phi) const;
  template <class GS>
  void interface_states_t(const FlowField& q, const std::vector<GS>& grad,
                          const std::vector<GS>& phi, int i, int j,
                          double* ql, double* qr) const;
};

}  // namespace f3d::cfd
