#include "cfd/admissibility.hpp"

#include <atomic>
#include <cmath>

#include "cfd/flux.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"

namespace f3d::cfd {

namespace {

bool vertex_admissible(const FlowConfig& cfg, const double* q, int nb) {
  for (int c = 0; c < nb; ++c)
    if (!std::isfinite(q[c])) return false;
  if (cfg.model == Model::kCompressible) {
    if (q[0] <= 0) return false;                // density
    if (pressure(cfg, q) <= 0) return false;    // ideal-gas pressure
  }
  return true;
}

}  // namespace

AdmissibilityReport scan_admissibility(const FlowConfig& cfg, const double* x,
                                       int num_vertices) {
  const int nb = cfg.nb();
  // Integer accumulation and min are order-independent, so atomics keep
  // the verdict bit-identical for any thread count.
  std::atomic<long long> violations{0};
  std::atomic<int> first_bad{num_vertices};
  exec::pool().parallel_for(
      0, num_vertices,
      [&](std::int64_t lo, std::int64_t hi) {
        long long local = 0;
        int local_first = num_vertices;
        for (std::int64_t v = lo; v < hi; ++v) {
          const double* q = x + static_cast<std::size_t>(v) * nb;
          if (!vertex_admissible(cfg, q, nb)) {
            ++local;
            if (static_cast<int>(v) < local_first)
              local_first = static_cast<int>(v);
          }
        }
        if (local > 0) {
          violations.fetch_add(local, std::memory_order_relaxed);
          int seen = first_bad.load(std::memory_order_relaxed);
          while (local_first < seen &&
                 !first_bad.compare_exchange_weak(seen, local_first,
                                                  std::memory_order_relaxed)) {
          }
        }
      },
      /*grain=*/1024);

  AdmissibilityReport rep;
  rep.violations = violations.load();
  rep.first_bad_vertex =
      rep.violations > 0 ? first_bad.load() : -1;
  if (rep.violations > 0)
    obs::Registry::global().count("cfd.admissibility_violations",
                                  rep.violations);
  return rep;
}

}  // namespace f3d::cfd
