#include "partition/multilevel.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace f3d::part {

namespace {

// Weighted graph for the coarsening hierarchy.
struct WGraph {
  std::vector<int> ptr, adj;
  std::vector<double> ewgt;  ///< parallel to adj
  std::vector<double> vwgt;  ///< per vertex

  [[nodiscard]] int n() const { return static_cast<int>(vwgt.size()); }
};

WGraph lift(const mesh::Graph& g) {
  WGraph w;
  w.ptr = g.ptr;
  w.adj = g.adj;
  w.ewgt.assign(g.adj.size(), 1.0);
  w.vwgt.assign(g.ptr.size() - 1, 1.0);
  return w;
}

// Heavy-edge matching: visit vertices in random order; match each
// unmatched vertex with its unmatched neighbor of maximum edge weight.
// Returns coarse-vertex id per fine vertex and the coarse count.
int heavy_edge_matching(const WGraph& g, Rng& rng, std::vector<int>& cmap) {
  const int n = g.n();
  cmap.assign(n, -1);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  shuffle(order, rng);

  int nc = 0;
  for (int v : order) {
    if (cmap[v] >= 0) continue;
    int best = -1;
    double best_w = -1;
    for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
      const int u = g.adj[p];
      if (cmap[u] < 0 && g.ewgt[p] > best_w) {
        best_w = g.ewgt[p];
        best = u;
      }
    }
    cmap[v] = nc;
    if (best >= 0) cmap[best] = nc;
    ++nc;
  }
  return nc;
}

WGraph contract(const WGraph& g, const std::vector<int>& cmap, int nc) {
  WGraph c;
  c.vwgt.assign(nc, 0.0);
  for (int v = 0; v < g.n(); ++v) c.vwgt[cmap[v]] += g.vwgt[v];

  // Aggregate edges; per-coarse-vertex map keeps this near-linear.
  std::vector<std::map<int, double>> rows(nc);
  for (int v = 0; v < g.n(); ++v) {
    const int cv = cmap[v];
    for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
      const int cu = cmap[g.adj[p]];
      if (cu != cv) rows[cv][cu] += g.ewgt[p];
    }
  }
  c.ptr.assign(nc + 1, 0);
  for (int v = 0; v < nc; ++v)
    c.ptr[v + 1] = c.ptr[v] + static_cast<int>(rows[v].size());
  c.adj.resize(c.ptr[nc]);
  c.ewgt.resize(c.ptr[nc]);
  for (int v = 0; v < nc; ++v) {
    int q = c.ptr[v];
    for (const auto& [u, w] : rows[v]) {
      c.adj[q] = u;
      c.ewgt[q] = w;
      ++q;
    }
  }
  return c;
}

// Greedy weighted growth on the coarsest graph (kway_grow adapted to
// vertex weights).
std::vector<int> initial_partition(const WGraph& g, int nparts, Rng& rng) {
  const int n = g.n();
  std::vector<int> part(n, -1);
  if (nparts >= n) {
    for (int v = 0; v < n; ++v) part[v] = v % nparts;
    return part;
  }
  std::vector<int> seeds;
  {
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    shuffle(order, rng);
    for (int k = 0; k < nparts; ++k) seeds.push_back(order[k]);
  }
  std::vector<std::vector<int>> frontier(nparts);
  std::vector<double> weight(nparts, 0.0);
  int assigned = 0;
  for (int s = 0; s < nparts; ++s) {
    if (part[seeds[s]] < 0) {
      part[seeds[s]] = s;
      weight[s] += g.vwgt[seeds[s]];
      frontier[s].push_back(seeds[s]);
      ++assigned;
    }
  }
  int next_unassigned = 0;
  while (assigned < n) {
    int best = -1;
    for (int s = 0; s < nparts; ++s)
      if (!frontier[s].empty() && (best < 0 || weight[s] < weight[best]))
        best = s;
    if (best < 0) {
      while (part[next_unassigned] >= 0) ++next_unassigned;
      int smallest = 0;
      for (int s = 1; s < nparts; ++s)
        if (weight[s] < weight[smallest]) smallest = s;
      part[next_unassigned] = smallest;
      weight[smallest] += g.vwgt[next_unassigned];
      frontier[smallest].push_back(next_unassigned);
      ++assigned;
      continue;
    }
    const int v = frontier[best].back();
    frontier[best].pop_back();
    for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
      const int u = g.adj[p];
      if (part[u] < 0) {
        part[u] = best;
        weight[best] += g.vwgt[u];
        frontier[best].push_back(u);
        ++assigned;
      }
    }
  }
  return part;
}

// One FM-style refinement pass: move boundary vertices to the adjacent
// part with the best cut gain, subject to the balance constraint.
// Returns number of moves.
int refine_pass(const WGraph& g, std::vector<int>& part, double max_weight,
                std::vector<double>& weight) {
  const int n = g.n();
  int moves = 0;
  for (int v = 0; v < n; ++v) {
    const int pv = part[v];
    // Connectivity to each adjacent part.
    double internal = 0;
    std::map<int, double> external;
    for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
      const int pu = part[g.adj[p]];
      if (pu == pv)
        internal += g.ewgt[p];
      else
        external[pu] += g.ewgt[p];
    }
    int best = -1;
    double best_gain = 0;
    for (const auto& [pu, w] : external) {
      const double gain = w - internal;
      if (gain > best_gain && weight[pu] + g.vwgt[v] <= max_weight &&
          weight[pv] - g.vwgt[v] > 0) {
        best_gain = gain;
        best = pu;
      }
    }
    if (best >= 0) {
      weight[pv] -= g.vwgt[v];
      weight[best] += g.vwgt[v];
      part[v] = best;
      ++moves;
    }
  }
  return moves;
}

// Balance phase: drain overweight parts by moving their boundary
// vertices to the lightest adjacent part, preferring the cheapest cut
// damage. Runs until all parts fit under max_weight or no move helps.
void balance_pass(const WGraph& g, std::vector<int>& part, int nparts,
                  double max_weight, std::vector<double>& weight) {
  const int n = g.n();
  for (int round = 0; round < 4 * nparts; ++round) {
    int heavy = -1;
    for (int s = 0; s < nparts; ++s)
      if (weight[s] > max_weight && (heavy < 0 || weight[s] > weight[heavy]))
        heavy = s;
    if (heavy < 0) return;

    // Cheapest boundary vertex of the heavy part that has a lighter
    // neighbor part.
    int best_v = -1, best_to = -1;
    double best_cost = 1e300;
    for (int v = 0; v < n; ++v) {
      if (part[v] != heavy) continue;
      double internal = 0;
      int to = -1;
      double to_weight = 1e300;
      double to_conn = 0;
      for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
        const int pu = part[g.adj[p]];
        if (pu == heavy) {
          internal += g.ewgt[p];
        } else if (weight[pu] + g.vwgt[v] < to_weight) {
          to_weight = weight[pu] + g.vwgt[v];
          to = pu;
          to_conn = g.ewgt[p];
        }
      }
      if (to < 0 || weight[to] + g.vwgt[v] > weight[heavy]) continue;
      const double cost = internal - to_conn;
      if (cost < best_cost) {
        best_cost = cost;
        best_v = v;
        best_to = to;
      }
    }
    if (best_v < 0) return;
    weight[heavy] -= g.vwgt[best_v];
    weight[best_to] += g.vwgt[best_v];
    part[best_v] = best_to;
  }
}

}  // namespace

Partition multilevel_kway(const mesh::Graph& g, int nparts,
                          const MultilevelOptions& opts) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(nparts >= 1 && nparts <= n);
  Partition result;
  result.nparts = nparts;
  if (nparts == 1) {
    result.part.assign(n, 0);
    return result;
  }

  Rng rng(opts.seed ^ 0x5bd1e995u);
  const int target = opts.coarsen_to > 0 ? opts.coarsen_to : 8 * nparts;

  // --- coarsening hierarchy ---
  std::vector<WGraph> levels;
  std::vector<std::vector<int>> cmaps;
  levels.push_back(lift(g));
  while (levels.back().n() > target) {
    std::vector<int> cmap;
    const int nc = heavy_edge_matching(levels.back(), rng, cmap);
    if (nc >= levels.back().n()) break;  // matching stalled
    levels.push_back(contract(levels.back(), cmap, nc));
    cmaps.push_back(std::move(cmap));
  }

  // --- initial partition on the coarsest level ---
  auto part = initial_partition(levels.back(), nparts, rng);

  // --- uncoarsen + refine ---
  const double total_weight =
      std::accumulate(levels.front().vwgt.begin(), levels.front().vwgt.end(), 0.0);
  const double max_weight = opts.imbalance_tol * total_weight / nparts;

  for (int lvl = static_cast<int>(levels.size()) - 1; lvl >= 0; --lvl) {
    auto& gw = levels[lvl];
    std::vector<double> weight(nparts, 0.0);
    for (int v = 0; v < gw.n(); ++v) weight[part[v]] += gw.vwgt[v];
    balance_pass(gw, part, nparts, max_weight, weight);
    for (int pass = 0; pass < opts.refine_passes; ++pass)
      if (refine_pass(gw, part, max_weight, weight) == 0) break;
    balance_pass(gw, part, nparts, max_weight, weight);
    if (lvl > 0) {
      // Project to the finer level.
      const auto& cmap = cmaps[lvl - 1];
      std::vector<int> fine(levels[lvl - 1].n());
      for (int v = 0; v < levels[lvl - 1].n(); ++v) fine[v] = part[cmap[v]];
      part = std::move(fine);
    }
  }

  // Guard: every part non-empty (tiny graphs + aggressive refinement can
  // empty one; reseed it with a boundary vertex of the largest part).
  std::vector<int> count(nparts, 0);
  for (int v : part) ++count[v];
  for (int s = 0; s < nparts; ++s) {
    if (count[s] > 0) continue;
    int donor = 0;
    for (int t = 1; t < nparts; ++t)
      if (count[t] > count[donor]) donor = t;
    for (int v = 0; v < n; ++v)
      if (part[v] == donor) {
        part[v] = s;
        --count[donor];
        ++count[s];
        break;
      }
  }

  result.part = std::move(part);
  return result;
}

}  // namespace f3d::part
