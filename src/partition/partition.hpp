#pragma once
// Mesh partitioners — stand-ins for the MeTiS variants of the paper's
// §2.3.2 / Figure 4 experiment.
//
//  * kway_grow      — greedy multi-seed BFS region growing with
//    smallest-part-first scheduling: produces *connected*, slightly
//    imbalanced subdomains (the behaviour Figure 4 attributes to k-MeTiS).
//  * balance_first  — strict round-robin striping of fixed-size chunks of
//    a bandwidth-reducing order: produces *perfectly balanced* subdomains
//    that consist of several disconnected pieces (the behaviour Figure 4
//    attributes to p-MeTiS; the paper explains its poorer convergence by
//    exactly this fragmentation, which effectively raises the block count
//    of block Jacobi / additive Schwarz).
//
// Both are deterministic given the seed.

#include <cstdint>
#include <vector>

#include "mesh/graph.hpp"

namespace f3d::part {

struct Partition {
  int nparts = 0;
  std::vector<int> part;  ///< vertex -> part id in [0, nparts)

  [[nodiscard]] int num_vertices() const { return static_cast<int>(part.size()); }
};

/// Connectivity-seeking greedy growth ("k-MeTiS"-like).
Partition kway_grow(const mesh::Graph& g, int nparts, unsigned seed = 0);

/// Balance-first striping ("p-MeTiS"-like). `chunks_per_part` controls the
/// fragmentation (number of stripes, hence roughly the number of connected
/// components each part is broken into). 0 = automatic: fragmentation
/// grows with the part count, matching the paper's observation that
/// p-MeTiS's disconnected pieces are a fine-granularity pathology
/// (nearly connected at small P, increasingly fragmented as subdomains
/// shrink).
Partition balance_first(const mesh::Graph& g, int nparts,
                        int chunks_per_part = 0);

struct PartitionQuality {
  double imbalance = 0;       ///< max part size / ideal part size
  std::int64_t edge_cut = 0;  ///< edges crossing parts
  int total_components = 0;   ///< sum over parts of connected components
  int max_components = 0;     ///< worst single part
  int min_size = 0, max_size = 0;
};
PartitionQuality evaluate(const mesh::Graph& g, const Partition& p);

/// Vertices of each part expanded by `levels` of BFS overlap. Level 0 =
/// owned vertices only. Result[s] is sorted ascending.
std::vector<std::vector<int>> overlap_expand(const mesh::Graph& g,
                                             const Partition& p, int levels);

/// Ghost-exchange statistics for the nearest-neighbor scatter: for each
/// part, the number of remote vertices adjacent to its owned set (values
/// it must receive each scatter) and the number of distinct neighbor
/// parts (messages).
struct CommStats {
  std::vector<int> ghosts_in;       ///< per part
  std::vector<int> neighbor_parts;  ///< per part
  std::int64_t total_ghosts = 0;
};
CommStats comm_stats(const mesh::Graph& g, const Partition& p);

/// What an incremental shrink recovery did to the decomposition.
struct RepartitionReport {
  int moved_vertices = 0;    ///< vertices reassigned off the dead part
  int receiving_parts = 0;   ///< distinct surviving parts that absorbed them
  int fallback_vertices = 0; ///< islands with no surviving neighbor part
  /// max part size / ideal size over *non-empty* parts.
  double imbalance_before = 0, imbalance_after = 0;
};

/// Incremental shrink-and-repartition after a fail-stop loss of
/// `dead_part`: every one of its vertices is handed to an adjacent
/// surviving part (smallest-receiver-first, wavefront order, so interior
/// vertices follow their already-moved neighbors); vertices in islands
/// with no surviving neighbor go to the globally smallest non-empty
/// surviving part. The partition keeps its `nparts` — the dead part is
/// simply left empty (par::measure_load excludes empty parts from its
/// per-processor averages), so part ids stay stable across repeated
/// failures. Throws if no non-empty surviving part exists.
Partition repartition_after_failure(const mesh::Graph& g, const Partition& p,
                                    int dead_part,
                                    RepartitionReport* report = nullptr);

/// Weighted execution-time imbalance of a partition under per-part
/// processor speeds: max_s(size_s / speed_s) over non-empty parts,
/// normalized by the ideal time n / sum(speed_s of non-empty parts).
/// 1.0 = perfectly speed-proportional; >= 1 always.
double weighted_imbalance(const Partition& p, const std::vector<double>& speed);

/// Incremental diffusive rebalance for a fail-SLOW rank (alive but
/// degraded): `speed[s]` is part s's measured relative processor speed
/// (1.0 = healthy; a 4x straggler is 0.25). Boundary vertices migrate,
/// one at a time, from the part with the largest weighted load
/// L_s = size_s / speed_s to the adjacent non-empty part minimizing
/// L_r + 1/speed_r, accepting a move only when that strictly undercuts
/// the donor's load — so the weighted makespan max_s(L_s) is monotone
/// non-increasing and the sorted load vector strictly decreases
/// lexicographically (termination). Parts keep their ids; a fully
/// drained donor is left empty. Deterministic: ties break on the lowest
/// part id, then the lowest vertex id. `report` gets the *weighted*
/// imbalance before/after and the migration counts.
Partition repartition_for_imbalance(const mesh::Graph& g, const Partition& p,
                                    const std::vector<double>& speed,
                                    RepartitionReport* report = nullptr);

}  // namespace f3d::part
