#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace f3d::part {

namespace {

double imbalance_over_nonempty(const std::vector<int>& size, double total) {
  int active = 0, mx = 0;
  for (int s : size) {
    if (s > 0) ++active;
    mx = std::max(mx, s);
  }
  if (active == 0 || total <= 0) return 0;
  return static_cast<double>(mx) / (total / active);
}

}  // namespace

Partition repartition_after_failure(const mesh::Graph& g, const Partition& p,
                                    int dead_part, RepartitionReport* report) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(p.num_vertices() == n);
  F3D_CHECK(dead_part >= 0 && dead_part < p.nparts);

  Partition out = p;
  std::vector<int> size(static_cast<std::size_t>(p.nparts), 0);
  for (int v = 0; v < n; ++v) ++size[static_cast<std::size_t>(p.part[v])];

  RepartitionReport rep;
  rep.imbalance_before = imbalance_over_nonempty(size, n);

  std::vector<int> dead_vertices;
  for (int v = 0; v < n; ++v)
    if (p.part[v] == dead_part) dead_vertices.push_back(v);
  rep.moved_vertices = static_cast<int>(dead_vertices.size());
  size[static_cast<std::size_t>(dead_part)] = 0;

  // Receivers must be able to actually hold state: non-empty survivors.
  // (An empty part is indistinguishable from a previously failed one.)
  auto smallest_survivor = [&]() {
    int best = -1;
    for (int s = 0; s < out.nparts; ++s) {
      if (s == dead_part || size[static_cast<std::size_t>(s)] == 0) continue;
      if (best < 0 ||
          size[static_cast<std::size_t>(s)] < size[static_cast<std::size_t>(best)])
        best = s;
    }
    return best;
  };
  F3D_CHECK_MSG(dead_vertices.empty() || smallest_survivor() >= 0,
                "no surviving part to absorb the dead subdomain");

  std::set<int> receivers;
  // Wavefront passes: each pass reassigns every dead vertex that touches a
  // surviving (or already-reassigned) part, preferring the smallest
  // receiver so the absorbed load spreads across the neighbors.
  std::vector<int> pending = dead_vertices;
  while (!pending.empty()) {
    std::vector<int> still_pending;
    bool progress = false;
    for (int v : pending) {
      int best = -1;
      for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e) {
        const int pw = out.part[g.adj[e]];
        if (pw == dead_part) continue;
        if (best < 0 || size[static_cast<std::size_t>(pw)] <
                            size[static_cast<std::size_t>(best)] ||
            (size[static_cast<std::size_t>(pw)] ==
                 size[static_cast<std::size_t>(best)] &&
             pw < best))
          best = pw;
      }
      if (best < 0) {
        still_pending.push_back(v);
        continue;
      }
      out.part[v] = best;
      ++size[static_cast<std::size_t>(best)];
      receivers.insert(best);
      progress = true;
    }
    if (!progress) {
      // Islands entirely inside the dead part (or isolated vertices): no
      // surviving neighbor exists, so balance them onto the smallest part.
      for (int v : still_pending) {
        const int best = smallest_survivor();
        out.part[v] = best;
        ++size[static_cast<std::size_t>(best)];
        receivers.insert(best);
        ++rep.fallback_vertices;
      }
      still_pending.clear();
    }
    pending = std::move(still_pending);
  }

  rep.receiving_parts = static_cast<int>(receivers.size());
  rep.imbalance_after = imbalance_over_nonempty(size, n);
  if (report != nullptr) *report = rep;
  return out;
}

}  // namespace f3d::part
