#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace f3d::part {

namespace {

double imbalance_over_nonempty(const std::vector<int>& size, double total) {
  int active = 0, mx = 0;
  for (int s : size) {
    if (s > 0) ++active;
    mx = std::max(mx, s);
  }
  if (active == 0 || total <= 0) return 0;
  return static_cast<double>(mx) / (total / active);
}

}  // namespace

Partition repartition_after_failure(const mesh::Graph& g, const Partition& p,
                                    int dead_part, RepartitionReport* report) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(p.num_vertices() == n);
  F3D_CHECK(dead_part >= 0 && dead_part < p.nparts);

  Partition out = p;
  std::vector<int> size(static_cast<std::size_t>(p.nparts), 0);
  for (int v = 0; v < n; ++v) ++size[static_cast<std::size_t>(p.part[v])];

  RepartitionReport rep;
  rep.imbalance_before = imbalance_over_nonempty(size, n);

  std::vector<int> dead_vertices;
  for (int v = 0; v < n; ++v)
    if (p.part[v] == dead_part) dead_vertices.push_back(v);
  rep.moved_vertices = static_cast<int>(dead_vertices.size());
  size[static_cast<std::size_t>(dead_part)] = 0;

  // Receivers must be able to actually hold state: non-empty survivors.
  // (An empty part is indistinguishable from a previously failed one.)
  auto smallest_survivor = [&]() {
    int best = -1;
    for (int s = 0; s < out.nparts; ++s) {
      if (s == dead_part || size[static_cast<std::size_t>(s)] == 0) continue;
      if (best < 0 ||
          size[static_cast<std::size_t>(s)] < size[static_cast<std::size_t>(best)])
        best = s;
    }
    return best;
  };
  F3D_CHECK_MSG(dead_vertices.empty() || smallest_survivor() >= 0,
                "no surviving part to absorb the dead subdomain");

  std::set<int> receivers;
  // Wavefront passes: each pass reassigns every dead vertex that touches a
  // surviving (or already-reassigned) part, preferring the smallest
  // receiver so the absorbed load spreads across the neighbors.
  std::vector<int> pending = dead_vertices;
  while (!pending.empty()) {
    std::vector<int> still_pending;
    bool progress = false;
    for (int v : pending) {
      int best = -1;
      for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e) {
        const int pw = out.part[g.adj[e]];
        if (pw == dead_part) continue;
        if (best < 0 || size[static_cast<std::size_t>(pw)] <
                            size[static_cast<std::size_t>(best)] ||
            (size[static_cast<std::size_t>(pw)] ==
                 size[static_cast<std::size_t>(best)] &&
             pw < best))
          best = pw;
      }
      if (best < 0) {
        still_pending.push_back(v);
        continue;
      }
      out.part[v] = best;
      ++size[static_cast<std::size_t>(best)];
      receivers.insert(best);
      progress = true;
    }
    if (!progress) {
      // Islands entirely inside the dead part (or isolated vertices): no
      // surviving neighbor exists, so balance them onto the smallest part.
      for (int v : still_pending) {
        const int best = smallest_survivor();
        out.part[v] = best;
        ++size[static_cast<std::size_t>(best)];
        receivers.insert(best);
        ++rep.fallback_vertices;
      }
      still_pending.clear();
    }
    pending = std::move(still_pending);
  }

  rep.receiving_parts = static_cast<int>(receivers.size());
  rep.imbalance_after = imbalance_over_nonempty(size, n);
  if (report != nullptr) *report = rep;
  return out;
}

namespace {

double weighted_imbalance_of(const std::vector<int>& size,
                             const std::vector<double>& speed) {
  double max_load = 0, total_speed = 0;
  std::int64_t total = 0;
  for (std::size_t s = 0; s < size.size(); ++s) {
    if (size[s] == 0) continue;
    max_load = std::max(max_load, size[s] / speed[s]);
    total_speed += speed[s];
    total += size[s];
  }
  if (total == 0 || total_speed <= 0) return 0;
  const double ideal = static_cast<double>(total) / total_speed;
  return max_load / ideal;
}

}  // namespace

double weighted_imbalance(const Partition& p,
                          const std::vector<double>& speed) {
  F3D_CHECK(static_cast<int>(speed.size()) == p.nparts);
  std::vector<int> size(static_cast<std::size_t>(p.nparts), 0);
  for (int v = 0; v < p.num_vertices(); ++v)
    ++size[static_cast<std::size_t>(p.part[static_cast<std::size_t>(v)])];
  return weighted_imbalance_of(size, speed);
}

Partition repartition_for_imbalance(const mesh::Graph& g, const Partition& p,
                                    const std::vector<double>& speed,
                                    RepartitionReport* report) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(p.num_vertices() == n);
  F3D_CHECK_MSG(static_cast<int>(speed.size()) == p.nparts,
                "repartition_for_imbalance: speed.size() != nparts");
  for (double s : speed)
    F3D_CHECK_MSG(s > 0, "repartition_for_imbalance: speeds must be > 0");

  Partition out = p;
  std::vector<int> size(static_cast<std::size_t>(p.nparts), 0);
  for (int v = 0; v < n; ++v) ++size[static_cast<std::size_t>(p.part[v])];
  std::vector<double> w(static_cast<std::size_t>(p.nparts), 0);
  std::vector<double> load(static_cast<std::size_t>(p.nparts), 0);
  for (int s = 0; s < p.nparts; ++s) {
    w[static_cast<std::size_t>(s)] = 1.0 / speed[static_cast<std::size_t>(s)];
    load[static_cast<std::size_t>(s)] =
        size[static_cast<std::size_t>(s)] * w[static_cast<std::size_t>(s)];
  }

  RepartitionReport rep;
  rep.imbalance_before = weighted_imbalance_of(size, speed);

  std::set<int> receivers;
  // Safety cap well above the lexicographic-descent bound any real mesh
  // hits; each accepted move strictly shrinks the sorted load vector.
  const int max_moves = 8 * n + 8;
  while (rep.moved_vertices < max_moves) {
    // Donor: the part gating the weighted makespan.
    int d = -1;
    for (int s = 0; s < out.nparts; ++s)
      if (size[static_cast<std::size_t>(s)] > 0 &&
          (d < 0 ||
           load[static_cast<std::size_t>(s)] > load[static_cast<std::size_t>(d)]))
        d = s;
    if (d < 0) break;
    // Cheapest landing spot among the donor's boundary: the adjacent
    // non-empty part whose load after accepting one vertex is smallest.
    int best_v = -1, best_r = -1;
    double best_after = 0;
    for (int v = 0; v < n; ++v) {
      if (out.part[v] != d) continue;
      for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e) {
        const int r = out.part[g.adj[e]];
        if (r == d || size[static_cast<std::size_t>(r)] == 0) continue;
        const double after = load[static_cast<std::size_t>(r)] +
                             w[static_cast<std::size_t>(r)];
        if (best_v < 0 || after < best_after ||
            (after == best_after && (r < best_r || (r == best_r && v < best_v)))) {
          best_v = v;
          best_r = r;
          best_after = after;
        }
      }
    }
    // Accept only a strict improvement of the donor: the receiver stays
    // under the old makespan, so max_s(load) never increases.
    if (best_v < 0 || best_after >= load[static_cast<std::size_t>(d)]) break;
    out.part[best_v] = best_r;
    --size[static_cast<std::size_t>(d)];
    ++size[static_cast<std::size_t>(best_r)];
    load[static_cast<std::size_t>(d)] -= w[static_cast<std::size_t>(d)];
    load[static_cast<std::size_t>(best_r)] = best_after;
    receivers.insert(best_r);
    ++rep.moved_vertices;
  }

  rep.receiving_parts = static_cast<int>(receivers.size());
  rep.imbalance_after = weighted_imbalance_of(size, speed);
  if (report != nullptr) *report = rep;
  return out;
}

}  // namespace f3d::part
