#include "partition/partition.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mesh/ordering.hpp"

namespace f3d::part {

Partition kway_grow(const mesh::Graph& g, int nparts, unsigned seed) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(nparts >= 1 && nparts <= n);
  Partition p;
  p.nparts = nparts;
  p.part.assign(n, -1);
  if (nparts == 1) {
    std::fill(p.part.begin(), p.part.end(), 0);
    return p;
  }

  // Seeds: k-center heuristic — first a pseudo-peripheral vertex, then
  // repeatedly the vertex farthest from all chosen seeds.
  Rng rng(seed);
  std::vector<int> seeds;
  seeds.push_back(mesh::pseudo_peripheral_vertex(
      g, static_cast<int>(rng.below(static_cast<std::uint64_t>(n)))));
  std::vector<int> min_dist(n, 1 << 29);
  while (static_cast<int>(seeds.size()) < nparts) {
    auto d = mesh::bfs_levels(g, seeds.back());
    int far_v = -1, far_d = -1;
    for (int v = 0; v < n; ++v) {
      if (d[v] >= 0) min_dist[v] = std::min(min_dist[v], d[v]);
      // Unreached vertices (disconnected graph) are the farthest of all.
      const int dv = d[v] < 0 ? (1 << 29) : min_dist[v];
      if (dv > far_d) {
        far_d = dv;
        far_v = v;
      }
    }
    seeds.push_back(far_v);
  }

  // Smallest-part-first BFS growth.
  std::vector<std::deque<int>> frontier(nparts);
  std::vector<int> size(nparts, 0);
  for (int s = 0; s < nparts; ++s) {
    if (p.part[seeds[s]] < 0) {
      p.part[seeds[s]] = s;
      ++size[s];
      frontier[s].push_back(seeds[s]);
    }
  }
  int assigned = 0;
  for (int v = 0; v < n; ++v) assigned += p.part[v] >= 0 ? 1 : 0;

  int next_unassigned = 0;
  while (assigned < n) {
    // Pick the smallest part that can still grow.
    int best = -1;
    for (int s = 0; s < nparts; ++s)
      if (!frontier[s].empty() && (best < 0 || size[s] < size[best])) best = s;
    if (best < 0) {
      // All frontiers empty but vertices remain (disconnected graph):
      // reseed the smallest part at an unassigned vertex.
      while (p.part[next_unassigned] >= 0) ++next_unassigned;
      int smallest = 0;
      for (int s = 1; s < nparts; ++s)
        if (size[s] < size[smallest]) smallest = s;
      p.part[next_unassigned] = smallest;
      ++size[smallest];
      ++assigned;
      frontier[smallest].push_back(next_unassigned);
      continue;
    }
    const int v = frontier[best].front();
    frontier[best].pop_front();
    for (int q = g.ptr[v]; q < g.ptr[v + 1]; ++q) {
      const int w = g.adj[q];
      if (p.part[w] < 0) {
        p.part[w] = best;
        ++size[best];
        ++assigned;
        frontier[best].push_back(w);
      }
    }
  }
  return p;
}

Partition balance_first(const mesh::Graph& g, int nparts, int chunks_per_part) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(nparts >= 1 && nparts <= n);
  F3D_CHECK(chunks_per_part >= 0);
  if (chunks_per_part == 0)
    chunks_per_part = std::clamp(1 + nparts / 16, 1, 8);
  Partition p;
  p.nparts = nparts;
  p.part.assign(n, -1);

  // Order vertices by RCM so chunks are locally contiguous, then stripe
  // chunks round-robin across parts: perfect +/-1 balance, fragmented
  // subdomains.
  auto perm = mesh::rcm_ordering(g);  // old -> new
  std::vector<int> order(n);          // order[k] = vertex ranked k-th
  for (int v = 0; v < n; ++v) order[perm[v]] = v;

  const long long total_chunks =
      static_cast<long long>(nparts) * chunks_per_part;
  for (int k = 0; k < n; ++k) {
    const long long chunk = static_cast<long long>(k) * total_chunks / n;
    p.part[order[k]] = static_cast<int>(chunk % nparts);
  }
  return p;
}

PartitionQuality evaluate(const mesh::Graph& g, const Partition& p) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(p.num_vertices() == n);
  PartitionQuality q;
  std::vector<int> size(p.nparts, 0);
  for (int v = 0; v < n; ++v) {
    F3D_CHECK(p.part[v] >= 0 && p.part[v] < p.nparts);
    ++size[p.part[v]];
  }
  q.min_size = *std::min_element(size.begin(), size.end());
  q.max_size = *std::max_element(size.begin(), size.end());
  q.imbalance = static_cast<double>(q.max_size) * p.nparts / n;

  for (int v = 0; v < n; ++v)
    for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e)
      if (g.adj[e] > v && p.part[g.adj[e]] != p.part[v]) ++q.edge_cut;

  for (int s = 0; s < p.nparts; ++s) {
    std::vector<char> mask(n, 0);
    for (int v = 0; v < n; ++v) mask[v] = p.part[v] == s ? 1 : 0;
    std::vector<int> comp;
    const int nc = mesh::connected_components(g, comp, mask);
    q.total_components += nc;
    q.max_components = std::max(q.max_components, nc);
  }
  return q;
}

std::vector<std::vector<int>> overlap_expand(const mesh::Graph& g,
                                             const Partition& p, int levels) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(levels >= 0);
  std::vector<std::vector<int>> result(p.nparts);
  for (int s = 0; s < p.nparts; ++s) {
    std::vector<char> in(n, 0);
    std::vector<int> current;
    for (int v = 0; v < n; ++v)
      if (p.part[v] == s) {
        in[v] = 1;
        current.push_back(v);
      }
    for (int lvl = 0; lvl < levels; ++lvl) {
      std::vector<int> next;
      for (int v : current)
        for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e) {
          const int w = g.adj[e];
          if (!in[w]) {
            in[w] = 1;
            next.push_back(w);
          }
        }
      current = std::move(next);
    }
    auto& out = result[s];
    for (int v = 0; v < n; ++v)
      if (in[v]) out.push_back(v);
  }
  return result;
}

CommStats comm_stats(const mesh::Graph& g, const Partition& p) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  CommStats cs;
  cs.ghosts_in.assign(p.nparts, 0);
  cs.neighbor_parts.assign(p.nparts, 0);
  std::vector<std::set<int>> ghosts(p.nparts);
  std::vector<std::set<int>> nbr_parts(p.nparts);
  for (int v = 0; v < n; ++v) {
    const int pv = p.part[v];
    for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e) {
      const int w = g.adj[e];
      const int pw = p.part[w];
      if (pw != pv) {
        ghosts[pv].insert(w);
        nbr_parts[pv].insert(pw);
      }
    }
  }
  for (int s = 0; s < p.nparts; ++s) {
    cs.ghosts_in[s] = static_cast<int>(ghosts[s].size());
    cs.neighbor_parts[s] = static_cast<int>(nbr_parts[s].size());
    cs.total_ghosts += cs.ghosts_in[s];
  }
  return cs;
}

}  // namespace f3d::part
