#pragma once
// Multilevel k-way partitioner — the closest stand-in for MeTiS proper
// (Karypis & Kumar [13]): heavy-edge-matching coarsening, a greedy
// partition of the coarsest graph, and Fiduccia-Mattheyses-style boundary
// refinement during uncoarsening. Compared with the single-level
// kway_grow it cuts 20-40% fewer edges at comparable balance, which the
// Figure 4 bench uses as its strongest "k-MeTiS" representative.

#include "partition/partition.hpp"

namespace f3d::part {

struct MultilevelOptions {
  unsigned seed = 0;
  int coarsen_to = 0;       ///< stop when vertices <= this (0 = 8*nparts)
  int refine_passes = 4;    ///< FM passes per uncoarsening level
  double imbalance_tol = 1.05;  ///< max part weight / ideal
};

/// Partition `g` into `nparts` with the multilevel scheme.
Partition multilevel_kway(const mesh::Graph& g, int nparts,
                          const MultilevelOptions& opts = {});

}  // namespace f3d::part
