#include "mesh/dual.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace f3d::mesh {

namespace {

// For each of the 6 local edges (p,q), the other two local vertices (r,s)
// ordered so that (p,q,r,s) is an even permutation of (0,1,2,3); this makes
// the quad diagonal formula below yield a normal oriented from p to q in a
// positively oriented tet.
constexpr int kEdgeTable[6][4] = {{0, 1, 2, 3}, {0, 2, 3, 1}, {0, 3, 1, 2},
                                  {1, 2, 0, 3}, {1, 3, 2, 0}, {2, 3, 0, 1}};

using Vec3 = std::array<double, 3>;

Vec3 sub(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

}  // namespace

DualMetrics compute_dual_metrics(const UnstructuredMesh& mesh) {
  const auto& coords = mesh.coords();
  const auto& tets = mesh.tets();
  const auto& edges = mesh.edges();
  const int nv = mesh.num_vertices();
  const int ne = mesh.num_edges();

  DualMetrics dual;
  dual.edge_normal.assign(ne, {0, 0, 0});
  dual.vertex_volume.assign(nv, 0.0);

  // Map (i<j) vertex pair -> edge index under the current edge ordering.
  std::map<std::array<int, 2>, int> edge_id;
  for (int e = 0; e < ne; ++e) edge_id[edges[e]] = e;

  for (int t = 0; t < mesh.num_tets(); ++t) {
    const auto& tet = tets[t];
    const double vol = mesh.tet_volume(t);
    F3D_CHECK_MSG(vol > 0, "negatively oriented or degenerate tet");
    for (int lv = 0; lv < 4; ++lv) dual.vertex_volume[tet[lv]] += vol / 4.0;

    const Vec3& x0 = coords[tet[0]];
    const Vec3& x1 = coords[tet[1]];
    const Vec3& x2 = coords[tet[2]];
    const Vec3& x3 = coords[tet[3]];
    const Vec3 cen = {(x0[0] + x1[0] + x2[0] + x3[0]) / 4.0,
                      (x0[1] + x1[1] + x2[1] + x3[1]) / 4.0,
                      (x0[2] + x1[2] + x2[2] + x3[2]) / 4.0};

    for (const auto& le : kEdgeTable) {
      const int p = tet[le[0]], q = tet[le[1]], r = tet[le[2]], s = tet[le[3]];
      const Vec3& xp = coords[p];
      const Vec3& xq = coords[q];
      const Vec3& xr = coords[r];
      const Vec3& xs = coords[s];
      const Vec3 mid = {(xp[0] + xq[0]) / 2.0, (xp[1] + xq[1]) / 2.0,
                        (xp[2] + xq[2]) / 2.0};
      const Vec3 fr = {(xp[0] + xq[0] + xr[0]) / 3.0,
                       (xp[1] + xq[1] + xr[1]) / 3.0,
                       (xp[2] + xq[2] + xr[2]) / 3.0};
      const Vec3 fs = {(xp[0] + xq[0] + xs[0]) / 3.0,
                       (xp[1] + xq[1] + xs[1]) / 3.0,
                       (xp[2] + xq[2] + xs[2]) / 3.0};
      // Quad (mid, fr, cen, fs): area vector = 1/2 (d1 x d2) with diagonals
      // d1 = cen - mid, d2 = fs - fr; oriented p -> q by the table's parity.
      const Vec3 d1 = sub(cen, mid);
      const Vec3 d2 = sub(fs, fr);
      const Vec3 n = cross(d1, d2);

      int a = p, b = q;
      double sign = 1.0;
      if (a > b) {
        std::swap(a, b);
        sign = -1.0;
      }
      auto it = edge_id.find({a, b});
      F3D_CHECK_MSG(it != edge_id.end(), "tet edge missing from edge list");
      auto& acc = dual.edge_normal[it->second];
      for (int d = 0; d < 3; ++d) acc[d] += sign * 0.5 * n[d];
    }
  }

  // Boundary face outward area vectors.
  const auto& bfaces = mesh.boundary_faces();
  dual.bface_normal.resize(bfaces.size());
  for (std::size_t f = 0; f < bfaces.size(); ++f) {
    const auto& v = bfaces[f].v;
    const Vec3 e1 = sub(coords[v[1]], coords[v[0]]);
    const Vec3 e2 = sub(coords[v[2]], coords[v[0]]);
    const Vec3 n = cross(e1, e2);
    dual.bface_normal[f] = {0.5 * n[0], 0.5 * n[1], 0.5 * n[2]};
  }
  return dual;
}

double closure_defect(const UnstructuredMesh& mesh, const DualMetrics& dual) {
  const int nv = mesh.num_vertices();
  std::vector<std::array<double, 3>> acc(nv, {0, 0, 0});
  const auto& edges = mesh.edges();
  for (int e = 0; e < mesh.num_edges(); ++e) {
    // Outward from edges[e][0]; inward (negative) for edges[e][1].
    for (int d = 0; d < 3; ++d) {
      acc[edges[e][0]][d] += dual.edge_normal[e][d];
      acc[edges[e][1]][d] -= dual.edge_normal[e][d];
    }
  }
  const auto& bfaces = mesh.boundary_faces();
  double mean_area = 0;
  for (std::size_t f = 0; f < bfaces.size(); ++f) {
    const auto& n = dual.bface_normal[f];
    mean_area += std::sqrt(n[0] * n[0] + n[1] * n[1] + n[2] * n[2]);
    for (int lv = 0; lv < 3; ++lv)
      for (int d = 0; d < 3; ++d) acc[bfaces[f].v[lv]][d] += n[d] / 3.0;
  }
  mean_area /= bfaces.empty() ? 1.0 : static_cast<double>(bfaces.size());
  if (mean_area == 0) mean_area = 1.0;

  double worst = 0;
  for (int i = 0; i < nv; ++i) {
    double m = std::sqrt(acc[i][0] * acc[i][0] + acc[i][1] * acc[i][1] +
                         acc[i][2] * acc[i][2]);
    worst = std::max(worst, m);
  }
  return worst / mean_area;
}

}  // namespace f3d::mesh
