#include "mesh/graph.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace f3d::mesh {

Graph build_graph(int n, const std::vector<std::array<int, 2>>& edges) {
  Graph g;
  g.ptr.assign(n + 1, 0);
  for (const auto& e : edges) {
    F3D_CHECK(e[0] >= 0 && e[0] < n && e[1] >= 0 && e[1] < n && e[0] != e[1]);
    ++g.ptr[e[0] + 1];
    ++g.ptr[e[1] + 1];
  }
  for (int i = 0; i < n; ++i) g.ptr[i + 1] += g.ptr[i];
  g.adj.resize(g.ptr[n]);
  std::vector<int> cursor(g.ptr.begin(), g.ptr.end() - 1);
  for (const auto& e : edges) {
    g.adj[cursor[e[0]]++] = e[1];
    g.adj[cursor[e[1]]++] = e[0];
  }
  for (int i = 0; i < n; ++i)
    std::sort(g.adj.begin() + g.ptr[i], g.adj.begin() + g.ptr[i + 1]);
  return g;
}

std::vector<int> bfs_levels(const Graph& g, int start,
                            const std::vector<char>& mask) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(start >= 0 && start < n);
  auto in_mask = [&](int v) { return mask.empty() || mask[v]; };
  std::vector<int> dist(n, -1);
  if (!in_mask(start)) return dist;
  std::queue<int> q;
  dist[start] = 0;
  q.push(start);
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
      int w = g.adj[p];
      if (dist[w] < 0 && in_mask(w)) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

int pseudo_peripheral_vertex(const Graph& g, int start) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(n > 0);
  int v = start;
  int ecc = -1;
  // Iterate: jump to the farthest vertex until eccentricity stops growing.
  for (int iter = 0; iter < 8; ++iter) {
    auto dist = bfs_levels(g, v);
    int far_v = v, far_d = 0;
    for (int i = 0; i < n; ++i) {
      if (dist[i] > far_d) {
        far_d = dist[i];
        far_v = i;
      }
    }
    if (far_d <= ecc) break;
    ecc = far_d;
    v = far_v;
  }
  return v;
}

int connected_components(const Graph& g, std::vector<int>& comp,
                         const std::vector<char>& mask) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  auto in_mask = [&](int v) { return mask.empty() || mask[v]; };
  comp.assign(n, -1);
  int ncomp = 0;
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (comp[s] >= 0 || !in_mask(s)) continue;
    stack.push_back(s);
    comp[s] = ncomp;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
        int w = g.adj[p];
        if (comp[w] < 0 && in_mask(w)) {
          comp[w] = ncomp;
          stack.push_back(w);
        }
      }
    }
    ++ncomp;
  }
  return ncomp;
}

}  // namespace f3d::mesh
