#pragma once
// Median-dual metrics for the edge-based finite-volume scheme.
//
// For each unique edge (i,j) of the tetrahedral mesh, the median dual
// surface separating control volumes i and j is assembled from one
// quadrilateral per incident tet (edge midpoint — face centroid — tet
// centroid — face centroid). `edge_normal[e]` is the integrated area
// vector of that surface, oriented from edges()[e][0] to edges()[e][1].
//
// `vertex_volume[i]` is the volume of vertex i's dual cell (each tet
// contributes a quarter of its volume to each of its four vertices).
//
// Boundary closure: each boundary triangle contributes one third of its
// outward area vector to each of its vertices, so that for every vertex
//   sum_{edges e at i} (+/-) edge_normal[e] + (1/3) sum_{bfaces at i} A_f = 0.
// This discrete divergence-free identity is what guarantees free-stream
// preservation of the flow solver and is enforced by tests.

#include <array>
#include <vector>

#include "mesh/mesh.hpp"

namespace f3d::mesh {

struct DualMetrics {
  /// Per-edge area vector, oriented from edge v[0] to v[1]; follows the
  /// mesh's current edge ordering.
  std::vector<std::array<double, 3>> edge_normal;
  /// Per-vertex dual control volume.
  std::vector<double> vertex_volume;
  /// Per-boundary-face outward area vector (full face area; a vertex's
  /// share is one third).
  std::vector<std::array<double, 3>> bface_normal;
};

/// Compute all median-dual metrics. Requires positively oriented tets and
/// outward-oriented boundary faces (guaranteed by the generators).
DualMetrics compute_dual_metrics(const UnstructuredMesh& mesh);

/// Max closure defect max_i |sum of dual-surface area vectors around i|,
/// normalized by the mean boundary face area. Near machine epsilon for a
/// watertight mesh; used by tests and mesh validation.
double closure_defect(const UnstructuredMesh& mesh, const DualMetrics& dual);

}  // namespace f3d::mesh
