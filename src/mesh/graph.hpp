#pragma once
// Generic algorithms on CSR adjacency graphs. Shared by the ordering code
// (RCM) and the mesh partitioners.

#include <vector>

#include "mesh/mesh.hpp"

namespace f3d::mesh {

using Graph = UnstructuredMesh::Adjacency;

/// Build a CSR graph directly from an edge list over n vertices.
Graph build_graph(int n, const std::vector<std::array<int, 2>>& edges);

/// BFS from `start` restricted to vertices where mask[v] == true (empty
/// mask = all). Returns distance per vertex (-1 = unreached).
std::vector<int> bfs_levels(const Graph& g, int start,
                            const std::vector<char>& mask = {});

/// A pseudo-peripheral vertex (endpoint of an approximately longest
/// shortest path), the classical starting point for RCM.
int pseudo_peripheral_vertex(const Graph& g, int start = 0);

/// Connected component id per vertex (restricted to mask if non-empty);
/// returns number of components. Vertices outside the mask get id -1.
int connected_components(const Graph& g, std::vector<int>& comp,
                         const std::vector<char>& mask = {});

}  // namespace f3d::mesh
