#include "mesh/ordering.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>

#include "common/error.hpp"
#include "tune/registry.hpp"

namespace f3d::mesh {

std::vector<int> rcm_ordering(const Graph& g) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  std::vector<int> degree(n);
  for (int i = 0; i < n; ++i) degree[i] = g.ptr[i + 1] - g.ptr[i];

  std::vector<int> cm_order;  // cm_order[k] = old id visited k-th
  cm_order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<int> nbrs;

  for (int seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Start each component at a pseudo-peripheral vertex for minimal
    // level-set width (hence minimal bandwidth).
    int start = seed;
    {
      // Restrict the peripheral search to this component.
      auto dist = bfs_levels(g, seed);
      int far_v = seed, far_d = 0;
      for (int i = 0; i < n; ++i)
        if (!visited[i] && dist[i] > far_d) {
          far_d = dist[i];
          far_v = i;
        }
      start = far_v;
    }
    std::size_t head = cm_order.size();
    cm_order.push_back(start);
    visited[start] = 1;
    while (head < cm_order.size()) {
      int v = cm_order[head++];
      nbrs.clear();
      for (int p = g.ptr[v]; p < g.ptr[v + 1]; ++p)
        if (!visited[g.adj[p]]) nbrs.push_back(g.adj[p]);
      std::sort(nbrs.begin(), nbrs.end(), [&](int a, int b) {
        return degree[a] != degree[b] ? degree[a] < degree[b] : a < b;
      });
      for (int w : nbrs) {
        visited[w] = 1;
        cm_order.push_back(w);
      }
    }
  }
  F3D_CHECK(static_cast<int>(cm_order.size()) == n);

  // Reverse, then convert visit order to a permutation old_id -> new_id.
  std::vector<int> perm(n);
  for (int k = 0; k < n; ++k) perm[cm_order[k]] = n - 1 - k;
  return perm;
}

namespace {
// Spread the low 21 bits of v so consecutive bits land 3 apart.
std::uint64_t spread3(std::uint64_t v) {
  v &= (1ULL << 21) - 1;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}
}  // namespace

std::vector<int> morton_ordering(const UnstructuredMesh& mesh) {
  const auto& coords = mesh.coords();
  const int n = mesh.num_vertices();
  // Bounding box for quantization.
  std::array<double, 3> lo = coords[0], hi = coords[0];
  for (const auto& p : coords)
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  std::vector<std::pair<std::uint64_t, int>> keys(n);
  for (int v = 0; v < n; ++v) {
    std::uint64_t key = 0;
    for (int d = 0; d < 3; ++d) {
      const double span = hi[d] - lo[d];
      const double t = span > 0 ? (coords[v][d] - lo[d]) / span : 0.0;
      const auto q = static_cast<std::uint64_t>(
          t * static_cast<double>((1 << 21) - 1));
      key |= spread3(q) << d;
    }
    keys[v] = {key, v};
  }
  std::sort(keys.begin(), keys.end());
  std::vector<int> perm(n);
  for (int rank = 0; rank < n; ++rank) perm[keys[rank].second] = rank;
  return perm;
}

std::vector<int> edge_order_sorted(const UnstructuredMesh& mesh) {
  const auto& edges = mesh.edges();
  std::vector<int> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return edges[a] < edges[b];
  });
  return order;
}

namespace {

// Greedy coloring: scan edges, give each the smallest color not already
// used by an edge at either endpoint. Color counts are small (bounded by
// ~2x the max vertex degree), so a per-vertex color list suffices.
// Returns per-edge colors; sets num_colors.
std::vector<int> greedy_edge_colors(const UnstructuredMesh& mesh,
                                    int* num_colors) {
  const auto& edges = mesh.edges();
  const int ne = static_cast<int>(edges.size());
  std::vector<int> color(ne, -1);
  std::vector<std::vector<int>> vertex_colors(mesh.num_vertices());
  int nc = 0;
  for (int e = 0; e < ne; ++e) {
    const auto& uv = edges[e];
    int c = 0;
    auto used = [&](int col) {
      const auto& a = vertex_colors[uv[0]];
      const auto& b = vertex_colors[uv[1]];
      return std::find(a.begin(), a.end(), col) != a.end() ||
             std::find(b.begin(), b.end(), col) != b.end();
    };
    while (used(c)) ++c;
    color[e] = c;
    vertex_colors[uv[0]].push_back(c);
    vertex_colors[uv[1]].push_back(c);
    nc = std::max(nc, c + 1);
  }
  if (num_colors != nullptr) *num_colors = nc;
  return color;
}

}  // namespace

std::vector<int> edge_order_colored(const UnstructuredMesh& mesh) {
  const int ne = mesh.num_edges();
  auto color = greedy_edge_colors(mesh, nullptr);

  // Order = concatenate color classes (stable within a class).
  std::vector<int> order(ne);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return color[a] < color[b]; });
  return order;
}

EdgeColoring edge_color_classes(const UnstructuredMesh& mesh) {
  const int ne = mesh.num_edges();
  int nc = 0;
  auto color = greedy_edge_colors(mesh, &nc);

  EdgeColoring co;
  co.class_ptr.assign(nc + 1, 0);
  for (int e = 0; e < ne; ++e) ++co.class_ptr[color[e] + 1];
  for (int c = 0; c < nc; ++c) co.class_ptr[c + 1] += co.class_ptr[c];
  co.edge.resize(ne);
  std::vector<int> next(co.class_ptr.begin(), co.class_ptr.end() - 1);
  for (int e = 0; e < ne; ++e) co.edge[next[color[e]]++] = e;
  return co;
}

std::vector<int> edge_order_random(const UnstructuredMesh& mesh, unsigned seed) {
  std::vector<int> order(mesh.num_edges());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  shuffle(order, rng);
  return order;
}

ColoringStats edge_coloring_stats(const UnstructuredMesh& mesh) {
  auto co = edge_color_classes(mesh);
  ColoringStats st;
  st.num_colors = co.num_colors();
  for (int c = 0; c < co.num_colors(); ++c)
    st.max_class = std::max(st.max_class, co.class_ptr[c + 1] - co.class_ptr[c]);
  return st;
}

void apply_best_ordering(UnstructuredMesh& mesh) {
  auto perm = rcm_ordering(mesh.vertex_adjacency());
  mesh.permute_vertices(perm);
  mesh.permute_edges(edge_order_sorted(mesh));
}

void OrderingOptions::bind(tune::Registry& reg, const std::string& prefix) {
  reg.add_enum(prefix + "vertex_order", &vertex_order,
               {"as_given", "rcm", "morton"},
               "vertex renumbering before discretization; controls matrix "
               "bandwidth / TLB reuse (paper §2.1.3, Table 1)");
  reg.add_enum(prefix + "edge_order", &edge_order,
               {"as_given", "sorted", "colored"},
               "edge traversal order of the flux loop; sorted = the paper's "
               "cache reordering, colored = the vector-era baseline "
               "(paper §2.1.3, Table 1)");
}

void apply_ordering(UnstructuredMesh& mesh, const OrderingOptions& opts) {
  switch (opts.vertex_order) {
    case OrderingOptions::VertexOrder::kAsGiven: break;
    case OrderingOptions::VertexOrder::kRcm:
      mesh.permute_vertices(rcm_ordering(mesh.vertex_adjacency()));
      break;
    case OrderingOptions::VertexOrder::kMorton:
      mesh.permute_vertices(morton_ordering(mesh));
      break;
  }
  switch (opts.edge_order) {
    case OrderingOptions::EdgeOrder::kAsGiven: break;
    case OrderingOptions::EdgeOrder::kSorted:
      mesh.permute_edges(edge_order_sorted(mesh));
      break;
    case OrderingOptions::EdgeOrder::kColored:
      mesh.permute_edges(edge_order_colored(mesh));
      break;
  }
}

}  // namespace f3d::mesh
