#include "mesh/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/error.hpp"

namespace f3d::mesh {

namespace {

// Kuhn subdivision of a hex into 6 tets, expressed through the hex's 8
// corners indexed by bit pattern zyx (bit0 = +x, bit1 = +y, bit2 = +z).
// Every tet walks from corner 000 to corner 111, one axis at a time, so the
// subdivision is conforming across neighboring hexes.
constexpr int kKuhnTets[6][4] = {
    {0b000, 0b001, 0b011, 0b111}, {0b000, 0b001, 0b101, 0b111},
    {0b000, 0b010, 0b011, 0b111}, {0b000, 0b010, 0b110, 0b111},
    {0b000, 0b100, 0b101, 0b111}, {0b000, 0b100, 0b110, 0b111}};

double orient_volume(const std::array<double, 3>& p0,
                     const std::array<double, 3>& p1,
                     const std::array<double, 3>& p2,
                     const std::array<double, 3>& p3) {
  double a[3] = {p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]};
  double b[3] = {p2[0] - p0[0], p2[1] - p0[1], p2[2] - p0[2]};
  double c[3] = {p3[0] - p0[0], p3[1] - p0[1], p3[2] - p0[2]};
  return (a[0] * (b[1] * c[2] - b[2] * c[1]) -
          a[1] * (b[0] * c[2] - b[2] * c[0]) +
          a[2] * (b[0] * c[1] - b[1] * c[0])) /
         6.0;
}

// Extract boundary faces: tet faces seen exactly once. Orient each outward
// (away from the opposite tet vertex, using physical coords) and tag with
// tag_fn(centroid in `tag_coords` space).
template <class TagFn>
std::vector<BoundaryFace> extract_boundary(
    const std::vector<std::array<double, 3>>& coords,
    const std::vector<std::array<double, 3>>& tag_coords,
    const std::vector<std::array<int, 4>>& tets, TagFn tag_fn) {
  // Local faces of a tet (v0,v1,v2,v3), each listed with the opposite
  // vertex recorded for orientation.
  constexpr int kFaces[4][4] = {
      {1, 2, 3, 0}, {0, 3, 2, 1}, {0, 1, 3, 2}, {0, 2, 1, 3}};

  struct FaceRec {
    std::array<int, 3> oriented;
    int opposite;
    int count = 0;
  };
  std::map<std::array<int, 3>, FaceRec> seen;
  for (const auto& t : tets) {
    for (const auto& lf : kFaces) {
      std::array<int, 3> f = {t[lf[0]], t[lf[1]], t[lf[2]]};
      std::array<int, 3> key = f;
      std::sort(key.begin(), key.end());
      auto& rec = seen[key];
      rec.oriented = f;
      rec.opposite = t[lf[3]];
      ++rec.count;
    }
  }

  std::vector<BoundaryFace> out;
  for (const auto& [key, rec] : seen) {
    if (rec.count != 1) {
      F3D_CHECK_MSG(rec.count == 2, "non-manifold face");
      continue;
    }
    std::array<int, 3> f = rec.oriented;
    // Outward orientation: normal must point away from the opposite vertex.
    const auto& p0 = coords[f[0]];
    const auto& p1 = coords[f[1]];
    const auto& p2 = coords[f[2]];
    const auto& po = coords[rec.opposite];
    double e1[3] = {p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]};
    double e2[3] = {p2[0] - p0[0], p2[1] - p0[1], p2[2] - p0[2]};
    double n[3] = {e1[1] * e2[2] - e1[2] * e2[1], e1[2] * e2[0] - e1[0] * e2[2],
                   e1[0] * e2[1] - e1[1] * e2[0]};
    double d[3] = {po[0] - p0[0], po[1] - p0[1], po[2] - p0[2]};
    if (n[0] * d[0] + n[1] * d[1] + n[2] * d[2] > 0) std::swap(f[1], f[2]);

    const auto& q0 = tag_coords[f[0]];
    const auto& q1 = tag_coords[f[1]];
    const auto& q2 = tag_coords[f[2]];
    std::array<double, 3> cen = {(q0[0] + q1[0] + q2[0]) / 3.0,
                                 (q0[1] + q1[1] + q2[1]) / 3.0,
                                 (q0[2] + q1[2] + q2[2]) / 3.0};
    out.push_back(BoundaryFace{f, tag_fn(cen)});
  }
  return out;
}

// Structured box -> tets; `warp` maps unit-cube coordinates to physical.
// `tag_fn` receives the *unit-cube* centroid of a boundary face, so wall
// classification is exact regardless of warping.
template <class WarpFn, class TagFn>
UnstructuredMesh structured_tets(int nx, int ny, int nz, WarpFn warp,
                                 TagFn tag_fn) {
  F3D_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  const int vx = nx + 1, vy = ny + 1, vz = nz + 1;
  auto vid = [&](int i, int j, int k) { return (k * vy + j) * vx + i; };

  std::vector<std::array<double, 3>> coords(
      static_cast<std::size_t>(vx) * vy * vz);
  std::vector<std::array<double, 3>> unit(coords.size());
  for (int k = 0; k < vz; ++k)
    for (int j = 0; j < vy; ++j)
      for (int i = 0; i < vx; ++i) {
        const std::array<double, 3> u = {static_cast<double>(i) / nx,
                                         static_cast<double>(j) / ny,
                                         static_cast<double>(k) / nz};
        unit[vid(i, j, k)] = u;
        coords[vid(i, j, k)] = warp(u[0], u[1], u[2]);
      }

  std::vector<std::array<int, 4>> tets;
  tets.reserve(static_cast<std::size_t>(nx) * ny * nz * 6);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        int corner[8];
        for (int c = 0; c < 8; ++c)
          corner[c] = vid(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1));
        for (const auto& kt : kKuhnTets) {
          std::array<int, 4> t = {corner[kt[0]], corner[kt[1]], corner[kt[2]],
                                  corner[kt[3]]};
          // Warping may flip orientation; normalize to positive volume.
          if (orient_volume(coords[t[0]], coords[t[1]], coords[t[2]],
                            coords[t[3]]) < 0)
            std::swap(t[2], t[3]);
          tets.push_back(t);
        }
      }
    }
  }

  auto bfaces = extract_boundary(coords, unit, tets, tag_fn);
  UnstructuredMesh mesh(std::move(coords), std::move(tets), std::move(bfaces));
  mesh.finalize();
  return mesh;
}

}  // namespace

UnstructuredMesh generate_wing_mesh(const WingMeshConfig& cfg) {
  auto thickness_at = [&](double x, double y) -> double {
    if (y > cfg.span) return 0.0;
    const double le = cfg.root_le + cfg.sweep * y;
    const double chord = cfg.root_chord - cfg.taper * y;
    if (chord <= 0) return 0.0;
    const double xi = (x - le) / chord;
    if (xi <= 0 || xi >= 1) return 0.0;
    const double planform = 1.0 - y / cfg.span;  // linear load falloff to tip
    return cfg.thickness * (0.25 + 0.75 * planform) * 4.0 * xi * (1.0 - xi);
  };

  auto warp = [&](double u, double v, double w) -> std::array<double, 3> {
    const double x = cfg.len_x * u;
    const double y = cfg.len_y * v;
    const double t = thickness_at(x, y);
    // Grading clusters vertical spacing toward the wall, then the bottom
    // wall is lifted by the wing thickness, blending to zero at the top
    // so the outer boundary stays a box.
    const double wg = std::pow(w, cfg.z_grading);
    const double z = cfg.len_z * wg + t * (1.0 - wg);
    return {x, y, z};
  };

  // Tagging happens in unit-cube space, so the (warped) bottom wall is
  // exactly w == 0.
  auto tag = [&](const std::array<double, 3>& cen) -> BoundaryTag {
    return cen[2] <= 1e-12 ? BoundaryTag::kWall : BoundaryTag::kFarField;
  };

  return structured_tets(cfg.nx, cfg.ny, cfg.nz, warp, tag);
}

UnstructuredMesh generate_box_mesh(int nx, int ny, int nz, double lx, double ly,
                                   double lz) {
  auto warp = [&](double u, double v, double w) -> std::array<double, 3> {
    return {lx * u, ly * v, lz * w};
  };
  auto tag = [&](const std::array<double, 3>& cen) -> BoundaryTag {
    return cen[2] <= 1e-12 ? BoundaryTag::kWall : BoundaryTag::kFarField;
  };
  return structured_tets(nx, ny, nz, warp, tag);
}

UnstructuredMesh generate_wing_mesh_with_size(int target_vertices) {
  F3D_CHECK(target_vertices >= 8);
  // Vertices = (nx+1)(ny+1)(nz+1) with nx = 2m, ny = nz = m.
  int m = 1;
  while ((2 * (m + 1) + 1) * (m + 2) * (m + 2) <= target_vertices) ++m;
  WingMeshConfig cfg;
  cfg.nx = 2 * m;
  cfg.ny = m;
  cfg.nz = m;
  return generate_wing_mesh(cfg);
}

void shuffle_mesh(UnstructuredMesh& mesh, unsigned seed) {
  Rng rng(seed);
  std::vector<int> vperm(mesh.num_vertices());
  std::iota(vperm.begin(), vperm.end(), 0);
  shuffle(vperm, rng);
  mesh.permute_vertices(vperm);

  std::vector<int> eorder(mesh.num_edges());
  std::iota(eorder.begin(), eorder.end(), 0);
  shuffle(eorder, rng);
  mesh.permute_edges(eorder);
}

}  // namespace f3d::mesh
