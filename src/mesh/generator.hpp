#pragma once
// Synthetic mesh generators.
//
// The paper's experiments use NASA ONERA M6 wing meshes (22,677 / 357,900 /
// 2.8M vertices), which are not distributable. We substitute a
// parameterized "wing-bump-in-channel" tetrahedral mesh: a structured box
// Kuhn-subdivided into tets, with the bottom wall deformed by a swept,
// tapered wing-thickness bump. The result has the same topology class
// (3-D tetrahedral, ~7 incident edges per vertex, 2-D boundary) and the
// same shock-free subsonic flow character the paper's incompressible runs
// have, which is all the layout / convergence experiments depend on.
//
// Generators emit vertices in structured (lexicographic) order — already a
// low-bandwidth ordering. `shuffle_mesh` destroys that order to emulate an
// "as-delivered" unstructured mesh so that the RCM / edge-reordering
// experiments start from a realistic baseline.

#include "common/rng.hpp"
#include "mesh/mesh.hpp"

namespace f3d::mesh {

struct WingMeshConfig {
  int nx = 16;  ///< cells streamwise
  int ny = 8;   ///< cells spanwise
  int nz = 8;   ///< cells vertical
  double len_x = 4.0, len_y = 2.0, len_z = 2.0;
  // Wing planform on the bottom (z=0) wall.
  double root_le = 1.0;      ///< leading edge x at root
  double sweep = 0.3;        ///< leading edge x shift per unit span
  double root_chord = 1.0;   ///< chord at root
  double taper = 0.35;       ///< chord reduction per unit span
  double span = 1.2;         ///< wing half-span
  double thickness = 0.06;   ///< max bump height
  /// Vertical grading exponent: > 1 clusters points toward the wall
  /// (boundary-layer-style stretching; 1 = uniform). Real CFD wing meshes
  /// are strongly graded, which widens the cell-size spread the local
  /// pseudo-timestep has to absorb.
  double z_grading = 1.0;
};

/// Generate the wing mesh; returned mesh is finalized, with positively
/// oriented tets and outward-oriented boundary faces. Bottom wall is
/// BoundaryTag::kWall, all other walls kFarField.
UnstructuredMesh generate_wing_mesh(const WingMeshConfig& cfg);

/// Plain box mesh (no bump); same tagging. Used by unit tests.
UnstructuredMesh generate_box_mesh(int nx, int ny, int nz, double lx = 1.0,
                                   double ly = 1.0, double lz = 1.0);

/// Pick (nx, ny, nz) with roughly 2:1:1 aspect so that the vertex count is
/// close to `target_vertices`, then generate.
UnstructuredMesh generate_wing_mesh_with_size(int target_vertices);

/// Randomly permute vertex numbering and edge order in place (deterministic
/// in `seed`). Emulates the unordered state of a mesh straight out of a
/// mesh generator, which the paper's ordering optimizations start from.
void shuffle_mesh(UnstructuredMesh& mesh, unsigned seed);

}  // namespace f3d::mesh
