#pragma once
// Vertex and edge orderings — the paper's §2.1.3 layout optimization.
//
// Vertex orderings control the Jacobian matrix bandwidth (the beta in the
// conflict-miss bound, paper Eq. 2); the paper uses Reverse Cuthill-McKee.
// Edge orderings control the access pattern of the edge-based flux loop:
//  * sorted  — sort edges by (tail, head) vertex: converts the edge loop
//              into a near vertex-based loop with high cache-line reuse
//              (the paper's reordering);
//  * colored — greedy conflict-free coloring, the original FUN3D ordering
//              tuned for vector machines: consecutive edges never share a
//              vertex, which destroys temporal locality on cache machines
//              (the paper's "NOER" baseline behaves like this);
//  * random  — worst-case shuffle, for stress tests.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mesh/graph.hpp"
#include "mesh/mesh.hpp"

namespace f3d::tune {
class Registry;
}

namespace f3d::mesh {

/// Reverse Cuthill-McKee: returns perm with new_id = perm[old_id],
/// suitable for UnstructuredMesh::permute_vertices. Handles disconnected
/// graphs (each component ordered from its own pseudo-peripheral vertex).
std::vector<int> rcm_ordering(const Graph& g);

/// Space-filling-curve (Morton / Z-order) vertex ordering: an
/// alternative locality ordering to RCM that clusters vertices by 3-D
/// position rather than graph distance. Comparable TLB behaviour, usually
/// slightly larger matrix bandwidth than RCM (ablated in
/// bench_micro_kernels). Returns perm with new_id = perm[old_id].
std::vector<int> morton_ordering(const UnstructuredMesh& mesh);

/// Edge order sorting edges lexicographically by (v[0], v[1]); result is a
/// list `order` where the new k-th edge is mesh.edges()[order[k]].
std::vector<int> edge_order_sorted(const UnstructuredMesh& mesh);

/// Vector-machine-style conflict-free coloring order: edges grouped by
/// greedy color; no two consecutive edges within a color share a vertex.
std::vector<int> edge_order_colored(const UnstructuredMesh& mesh);

/// Deterministic random shuffle.
std::vector<int> edge_order_random(const UnstructuredMesh& mesh, unsigned seed);

/// Number of colors and max color class size of the colored order (for
/// diagnostics / tests).
struct ColoringStats {
  int num_colors = 0;
  int max_class = 0;
};
ColoringStats edge_coloring_stats(const UnstructuredMesh& mesh);

/// Conflict-free edge color classes for the parallel scatter loops of the
/// execution layer (f3d::exec): a partition of the edge ids such that no
/// two edges in a class share a vertex. Processing classes sequentially
/// and the edges within a class in parallel makes the edge-based
/// residual/gradient/Jacobian scatters race-free without per-thread
/// replicated arrays — and, because each vertex receives at most one
/// contribution per class, the per-vertex accumulation order is the class
/// order: fixed, independent of the thread count.
struct EdgeColoring {
  std::vector<int> class_ptr;  ///< size num_colors()+1
  std::vector<int> edge;       ///< edge ids grouped by class, ascending within
  [[nodiscard]] int num_colors() const {
    return static_cast<int>(class_ptr.empty() ? 0 : class_ptr.size() - 1);
  }
};
EdgeColoring edge_color_classes(const UnstructuredMesh& mesh);

/// Apply RCM vertex ordering + sorted edge ordering in place — the paper's
/// recommended layout.
void apply_best_ordering(UnstructuredMesh& mesh);

/// The §2.1.3 layout decisions as a tunable policy: which vertex
/// renumbering and which edge traversal order to apply to an as-delivered
/// mesh. apply_ordering() realizes the policy in place; bind() exposes
/// both choices as enum knobs so the autotuner searches the paper's
/// Table 1 reordering axis alongside the solver knobs.
struct OrderingOptions {
  enum class VertexOrder {
    kAsGiven,  ///< keep the delivered numbering (the "NOER"-ish baseline)
    kRcm,      ///< Reverse Cuthill-McKee (the paper's choice)
    kMorton,   ///< space-filling-curve locality ordering
  };
  enum class EdgeOrder {
    kAsGiven,  ///< keep the delivered edge order
    kSorted,   ///< lexicographic (tail, head) — the paper's reordering
    kColored,  ///< vector-machine conflict-free coloring order
  };
  VertexOrder vertex_order = VertexOrder::kRcm;
  EdgeOrder edge_order = EdgeOrder::kSorted;

  /// Register both orderings as enum knobs under `prefix`. The registry
  /// borrows this struct: it must outlive the registry.
  void bind(tune::Registry& reg, const std::string& prefix = "mesh.");
};

/// Permute `mesh` in place per the policy (defaults = apply_best_ordering).
void apply_ordering(UnstructuredMesh& mesh, const OrderingOptions& opts);

}  // namespace f3d::mesh
