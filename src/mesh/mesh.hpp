#pragma once
// Unstructured tetrahedral mesh: the substrate the paper's FUN3D
// application discretizes on. Vertices carry coordinates; connectivity is
// stored as tetrahedra, unique edges (derived), and tagged boundary
// triangles. The edge list is the primary iteration structure of the
// edge-based finite-volume scheme, so its *ordering* is a first-class
// concept (see ordering.hpp) — it is one of the paper's three layout
// optimizations.

#include <array>
#include <cstdint>
#include <vector>

namespace f3d::mesh {

/// Boundary condition tags used by the flow solver.
enum class BoundaryTag : int {
  kWall = 1,      ///< slip wall (wing surface / symmetry plane)
  kFarField = 2,  ///< characteristic far-field
};

struct BoundaryFace {
  std::array<int, 3> v;  ///< vertex ids, outward-oriented (right-hand rule)
  BoundaryTag tag;
};

class UnstructuredMesh {
public:
  UnstructuredMesh() = default;

  /// Construct from raw arrays; call finalize() before use.
  UnstructuredMesh(std::vector<std::array<double, 3>> coords,
                   std::vector<std::array<int, 4>> tets,
                   std::vector<BoundaryFace> bfaces);

  /// Derive the unique edge list from the tetrahedra, validate
  /// connectivity, and orient boundary faces. Must be called once after
  /// construction or any topology change.
  void finalize();

  [[nodiscard]] int num_vertices() const { return static_cast<int>(coords_.size()); }
  [[nodiscard]] int num_tets() const { return static_cast<int>(tets_.size()); }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] int num_boundary_faces() const {
    return static_cast<int>(bfaces_.size());
  }

  [[nodiscard]] const std::vector<std::array<double, 3>>& coords() const {
    return coords_;
  }
  [[nodiscard]] const std::vector<std::array<int, 4>>& tets() const {
    return tets_;
  }
  /// Unique edges; each stored with v[0] < v[1] in the *current* vertex
  /// numbering. Edge order is mutable via permute_edges().
  [[nodiscard]] const std::vector<std::array<int, 2>>& edges() const {
    return edges_;
  }
  [[nodiscard]] const std::vector<BoundaryFace>& boundary_faces() const {
    return bfaces_;
  }

  /// Renumber vertices: new_id = perm[old_id]. Rewrites tets, edges and
  /// boundary faces, re-sorting each edge so v[0] < v[1]. perm must be a
  /// bijection on [0, num_vertices).
  void permute_vertices(const std::vector<int>& perm);

  /// Reorder the edge list: new edge k is old edge order[k].
  void permute_edges(const std::vector<int>& order);

  /// Vertex-to-vertex adjacency in CSR form (from the edge list,
  /// symmetric). Rebuilt lazily after permutations.
  struct Adjacency {
    std::vector<int> ptr;  ///< size num_vertices+1
    std::vector<int> adj;  ///< neighbor ids, sorted within each row
  };
  [[nodiscard]] Adjacency vertex_adjacency() const;

  /// Maximum |i - j| over edges (matrix bandwidth proxy beta in the
  /// paper's conflict-miss model, Eq. 2).
  [[nodiscard]] int bandwidth() const;

  /// Geometric volume of tet t (positive if positively oriented).
  [[nodiscard]] double tet_volume(int t) const;

  /// Total mesh volume (sum of tet volumes).
  [[nodiscard]] double total_volume() const;

private:
  std::vector<std::array<double, 3>> coords_;
  std::vector<std::array<int, 4>> tets_;
  std::vector<std::array<int, 2>> edges_;
  std::vector<BoundaryFace> bfaces_;
  bool finalized_ = false;

  void check_finalized() const;
};

}  // namespace f3d::mesh
