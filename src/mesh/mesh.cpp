#include "mesh/mesh.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace f3d::mesh {

namespace {
// The 6 edges of a tet as local vertex index pairs.
constexpr int kTetEdges[6][2] = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
}  // namespace

UnstructuredMesh::UnstructuredMesh(std::vector<std::array<double, 3>> coords,
                                   std::vector<std::array<int, 4>> tets,
                                   std::vector<BoundaryFace> bfaces)
    : coords_(std::move(coords)),
      tets_(std::move(tets)),
      bfaces_(std::move(bfaces)) {}

void UnstructuredMesh::finalize() {
  const int nv = num_vertices();
  F3D_CHECK_MSG(nv > 0, "empty mesh");
  for (const auto& t : tets_)
    for (int v : t) F3D_CHECK_MSG(v >= 0 && v < nv, "tet vertex out of range");
  for (const auto& f : bfaces_)
    for (int v : f.v) F3D_CHECK_MSG(v >= 0 && v < nv, "bface vertex out of range");

  // Unique edge extraction: collect all 6 edges of every tet, sort, dedup.
  std::vector<std::array<int, 2>> all;
  all.reserve(tets_.size() * 6);
  for (const auto& t : tets_) {
    for (const auto& le : kTetEdges) {
      int a = t[le[0]], b = t[le[1]];
      F3D_CHECK_MSG(a != b, "degenerate tet (repeated vertex)");
      if (a > b) std::swap(a, b);
      all.push_back({a, b});
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  edges_ = std::move(all);
  finalized_ = true;
}

void UnstructuredMesh::check_finalized() const {
  F3D_CHECK_MSG(finalized_, "mesh not finalized; call finalize()");
}

void UnstructuredMesh::permute_vertices(const std::vector<int>& perm) {
  check_finalized();
  const int nv = num_vertices();
  F3D_CHECK_MSG(static_cast<int>(perm.size()) == nv, "perm size mismatch");
  {
    std::vector<char> seen(nv, 0);
    for (int p : perm) {
      F3D_CHECK_MSG(p >= 0 && p < nv && !seen[p], "perm is not a bijection");
      seen[p] = 1;
    }
  }
  std::vector<std::array<double, 3>> nc(coords_.size());
  for (int old_id = 0; old_id < nv; ++old_id) nc[perm[old_id]] = coords_[old_id];
  coords_ = std::move(nc);
  for (auto& t : tets_)
    for (auto& v : t) v = perm[v];
  for (auto& f : bfaces_)
    for (auto& v : f.v) v = perm[v];
  for (auto& e : edges_) {
    e = {perm[e[0]], perm[e[1]]};
    if (e[0] > e[1]) std::swap(e[0], e[1]);
  }
}

void UnstructuredMesh::permute_edges(const std::vector<int>& order) {
  check_finalized();
  const int ne = num_edges();
  F3D_CHECK_MSG(static_cast<int>(order.size()) == ne, "order size mismatch");
  std::vector<char> seen(ne, 0);
  std::vector<std::array<int, 2>> out(edges_.size());
  for (int k = 0; k < ne; ++k) {
    int o = order[k];
    F3D_CHECK_MSG(o >= 0 && o < ne && !seen[o], "order is not a bijection");
    seen[o] = 1;
    out[k] = edges_[o];
  }
  edges_ = std::move(out);
}

UnstructuredMesh::Adjacency UnstructuredMesh::vertex_adjacency() const {
  check_finalized();
  const int nv = num_vertices();
  Adjacency a;
  a.ptr.assign(nv + 1, 0);
  for (const auto& e : edges_) {
    ++a.ptr[e[0] + 1];
    ++a.ptr[e[1] + 1];
  }
  for (int i = 0; i < nv; ++i) a.ptr[i + 1] += a.ptr[i];
  a.adj.resize(a.ptr[nv]);
  std::vector<int> cursor(a.ptr.begin(), a.ptr.end() - 1);
  for (const auto& e : edges_) {
    a.adj[cursor[e[0]]++] = e[1];
    a.adj[cursor[e[1]]++] = e[0];
  }
  for (int i = 0; i < nv; ++i)
    std::sort(a.adj.begin() + a.ptr[i], a.adj.begin() + a.ptr[i + 1]);
  return a;
}

int UnstructuredMesh::bandwidth() const {
  check_finalized();
  int bw = 0;
  for (const auto& e : edges_) bw = std::max(bw, e[1] - e[0]);
  return bw;
}

double UnstructuredMesh::tet_volume(int t) const {
  const auto& tet = tets_[t];
  const auto& p0 = coords_[tet[0]];
  const auto& p1 = coords_[tet[1]];
  const auto& p2 = coords_[tet[2]];
  const auto& p3 = coords_[tet[3]];
  double a[3] = {p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]};
  double b[3] = {p2[0] - p0[0], p2[1] - p0[1], p2[2] - p0[2]};
  double c[3] = {p3[0] - p0[0], p3[1] - p0[1], p3[2] - p0[2]};
  double det = a[0] * (b[1] * c[2] - b[2] * c[1]) -
               a[1] * (b[0] * c[2] - b[2] * c[0]) +
               a[2] * (b[0] * c[1] - b[1] * c[0]);
  return det / 6.0;
}

double UnstructuredMesh::total_volume() const {
  double s = 0;
  for (int t = 0; t < num_tets(); ++t) s += tet_volume(t);
  return s;
}

}  // namespace f3d::mesh
