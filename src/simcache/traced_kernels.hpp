#pragma once
// Instrumented versions of the performance-critical kernels. Each is a
// template over a Tracer policy: with MemoryTracer they drive the cache /
// TLB simulator (Figure 3); with NullTracer they compile to the plain
// kernel (zero instrumentation overhead), which tests use to prove the
// traced kernels compute identical results to the production ones.
//
// The traced access pattern mirrors the production kernels':
//  * index/value streaming through the matrix arrays,
//  * gather of x (the locality-sensitive part — layout-dependent),
//  * accumulate into y / the residual.

#include <array>
#include <vector>

#include "cfd/flux.hpp"
#include "cfd/state.hpp"
#include "mesh/dual.hpp"
#include "mesh/mesh.hpp"
#include "simcache/cache.hpp"
#include "sparse/csr.hpp"

namespace f3d::simcache {

/// y = A x for point CSR. The arithmetic funnels through the same
/// sparse::detail dot helpers (with the same SIMD dispatch) as the
/// production kernel, so the results stay bit-identical to production in
/// both the scalar and SIMD configurations.
template <class Tracer>
void traced_spmv_csr(const sparse::Csr<double>& a, const double* x, double* y,
                     Tracer& t) {
  const bool use_simd = f3d::simd::enabled();
  for (int i = 0; i < a.n; ++i) {
    t.touch(&a.ptr[i], 2 * sizeof(int));
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p) {
      t.touch(&a.col[p], sizeof(int));
      t.touch(&a.val[p], sizeof(double));
      t.touch(&x[a.col[p]], sizeof(double));
    }
    const int b = a.ptr[i];
    const int count = a.ptr[i + 1] - b;
    t.touch(&y[i], sizeof(double));
    y[i] = use_simd ? sparse::detail::row_dot_promote_simd(
                          a.val.data() + b, a.col.data() + b, count, x)
                    : sparse::detail::row_dot_promote(
                          a.val.data() + b, a.col.data() + b, count, x);
  }
}

/// y = A x for block CSR (one index load per block — the integer-traffic
/// reduction of structural blocking).
template <class Tracer>
void traced_spmv_bcsr(const sparse::Bcsr<double>& a, const double* x,
                      double* y, Tracer& t) {
  const int nb = a.nb;
  const std::size_t bsz = static_cast<std::size_t>(nb) * nb;
  const bool use_simd = f3d::simd::enabled();
  for (int i = 0; i < a.nrows; ++i) {
    t.touch(&a.ptr[i], 2 * sizeof(int));
    double acc[8] = {0};
    for (int p = a.ptr[i]; p < a.ptr[i + 1]; ++p) {
      t.touch(&a.col[p], sizeof(int));
      const double* b = &a.val[p * bsz];
      t.touch(b, bsz * sizeof(double));
      const double* xj = &x[static_cast<std::size_t>(a.col[p]) * nb];
      t.touch(xj, static_cast<std::size_t>(nb) * sizeof(double));
      for (int r = 0; r < nb; ++r)
        acc[r] += use_simd
                      ? sparse::detail::dense_dot_promote_simd(b + r * nb, xj,
                                                               nb)
                      : sparse::detail::dense_dot_promote(b + r * nb, xj, nb);
    }
    double* yi = &y[static_cast<std::size_t>(i) * nb];
    t.touch(yi, static_cast<std::size_t>(nb) * sizeof(double));
    for (int r = 0; r < nb; ++r) yi[r] = acc[r];
  }
}

/// First-order flux residual over the edge list (layout-aware through the
/// FlowField base/stride accessors). Touches: edge vertices, edge normal,
/// both states, both residual slots.
template <class Tracer>
void traced_flux(const mesh::UnstructuredMesh& mesh,
                 const mesh::DualMetrics& dual, const cfd::FlowConfig& cfg,
                 const cfd::FlowField& q, std::vector<double>& r, Tracer& t) {
  const int ncomp = cfg.nb();
  r.assign(q.data().size(), 0.0);
  const auto& edges = mesh.edges();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  double ql[cfd::kMaxComponents], qr[cfd::kMaxComponents],
      f[cfd::kMaxComponents];
  for (int e = 0; e < mesh.num_edges(); ++e) {
    t.touch(&edges[e], sizeof(edges[e]));
    t.touch(&dual.edge_normal[e], sizeof(dual.edge_normal[e]));
    const int i = edges[e][0], j = edges[e][1];
    const double n[3] = {dual.edge_normal[e][0], dual.edge_normal[e][1],
                         dual.edge_normal[e][2]};
    const std::size_t bi = q.base(i), bj = q.base(j);
    for (int c = 0; c < ncomp; ++c) {
      t.touch(&qd[bi + c * st], sizeof(double));
      t.touch(&qd[bj + c * st], sizeof(double));
      ql[c] = qd[bi + c * st];
      qr[c] = qd[bj + c * st];
    }
    cfd::rusanov_flux(cfg, ql, qr, n, f);
    for (int c = 0; c < ncomp; ++c) {
      t.touch(&r[bi + c * st], sizeof(double));
      t.touch(&r[bj + c * st], sizeof(double));
      r[bi + c * st] += f[c];
      r[bj + c * st] -= f[c];
    }
  }
}

/// Second-order flux access pattern: like traced_flux, but additionally
/// touching the per-vertex data a reconstructing flux reads — coordinates,
/// gradients (nb x 3 doubles) and limiters (nb doubles) of both endpoints.
/// The gradient/limiter arrays are passed in (their *values* don't affect
/// miss counts; the layout-faithful address pattern does). This matches
/// the production second-order kernel's traffic, which is what makes the
/// L2 miss counts of Figure 3 respond to the edge ordering.
template <class Tracer>
void traced_flux_second_order(const mesh::UnstructuredMesh& mesh,
                              const mesh::DualMetrics& dual,
                              const cfd::FlowConfig& cfg,
                              const cfd::FlowField& q,
                              const std::vector<double>& grad,
                              const std::vector<double>& phi,
                              std::vector<double>& r, Tracer& t) {
  const int ncomp = cfg.nb();
  r.assign(q.data().size(), 0.0);
  const auto& edges = mesh.edges();
  const auto& coords = mesh.coords();
  const double* qd = q.data().data();
  const std::size_t st = q.stride();
  double ql[cfd::kMaxComponents], qr[cfd::kMaxComponents],
      f[cfd::kMaxComponents];
  for (int e = 0; e < mesh.num_edges(); ++e) {
    t.touch(&edges[e], sizeof(edges[e]));
    t.touch(&dual.edge_normal[e], sizeof(dual.edge_normal[e]));
    const int i = edges[e][0], j = edges[e][1];
    t.touch(&coords[i], sizeof(coords[i]));
    t.touch(&coords[j], sizeof(coords[j]));
    t.touch(&grad[(static_cast<std::size_t>(i) * ncomp) * 3],
            static_cast<std::size_t>(ncomp) * 3 * sizeof(double));
    t.touch(&grad[(static_cast<std::size_t>(j) * ncomp) * 3],
            static_cast<std::size_t>(ncomp) * 3 * sizeof(double));
    t.touch(&phi[static_cast<std::size_t>(i) * ncomp],
            static_cast<std::size_t>(ncomp) * sizeof(double));
    t.touch(&phi[static_cast<std::size_t>(j) * ncomp],
            static_cast<std::size_t>(ncomp) * sizeof(double));
    const double n[3] = {dual.edge_normal[e][0], dual.edge_normal[e][1],
                         dual.edge_normal[e][2]};
    const std::size_t bi = q.base(i), bj = q.base(j);
    for (int c = 0; c < ncomp; ++c) {
      t.touch(&qd[bi + c * st], sizeof(double));
      t.touch(&qd[bj + c * st], sizeof(double));
      ql[c] = qd[bi + c * st];
      qr[c] = qd[bj + c * st];
    }
    cfd::rusanov_flux(cfg, ql, qr, n, f);
    for (int c = 0; c < ncomp; ++c) {
      t.touch(&r[bi + c * st], sizeof(double));
      t.touch(&r[bj + c * st], sizeof(double));
      r[bi + c * st] += f[c];
      r[bj + c * st] -= f[c];
    }
  }
}

}  // namespace f3d::simcache
