#include "simcache/cache.hpp"

#include "obs/obs.hpp"

namespace f3d::simcache {

namespace {
int log2_exact(std::uint64_t v) {
  int s = 0;
  while ((1ULL << s) < v) ++s;
  F3D_CHECK_MSG((1ULL << s) == v, "size must be a power of two");
  return s;
}
}  // namespace

CacheModel::CacheModel(std::uint64_t capacity, std::uint32_t line_size,
                       std::uint32_t associativity, bool classify_misses)
    : capacity_(capacity),
      line_size_(line_size),
      assoc_(associativity),
      classify_(classify_misses) {
  F3D_CHECK(capacity > 0 && line_size > 0 && associativity > 0);
  const std::uint64_t lines = capacity / line_size;
  F3D_CHECK_MSG(lines * line_size == capacity, "capacity % line_size != 0");
  F3D_CHECK_MSG(lines % associativity == 0, "lines % associativity != 0");
  num_sets_ = static_cast<std::uint32_t>(lines / associativity);
  // Sets must be a power of two for simple index extraction.
  log2_exact(num_sets_);
  line_shift_ = log2_exact(line_size);
  tags_.assign(static_cast<std::size_t>(num_sets_) * assoc_, 0);
  lru_.assign(tags_.size(), 0);
}

bool CacheModel::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(line & (num_sets_ - 1));
  const std::uint64_t tag = line + 1;  // +1 so 0 means invalid
  std::uint64_t* t = &tags_[static_cast<std::size_t>(set) * assoc_];
  std::uint64_t* u = &lru_[static_cast<std::size_t>(set) * assoc_];
  ++clock_;
  bool hit = false;
  std::uint32_t victim = 0;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (t[w] == tag) {
      u[w] = clock_;
      ++hits_;
      hit = true;
      break;
    }
    if (u[w] < u[victim]) victim = w;
  }
  if (!hit) {
    t[victim] = tag;
    u[victim] = clock_;
    ++misses_;
  }

  if (classify_) {
    // Shadow fully-associative LRU of the same capacity.
    const std::uint64_t num_lines = capacity_ / line_size_;
    bool fa_hit = false;
    auto it = fa_pos_.find(line);
    if (it != fa_pos_.end()) {
      fa_lru_.erase(it->second);
      fa_lru_.push_front(line);
      it->second = fa_lru_.begin();
      fa_hit = true;
    } else {
      fa_lru_.push_front(line);
      fa_pos_[line] = fa_lru_.begin();
      if (fa_lru_.size() > num_lines) {
        fa_pos_.erase(fa_lru_.back());
        fa_lru_.pop_back();
      }
    }
    if (!hit) {
      if (seen_.insert(line).second)
        ++compulsory_;
      else if (fa_hit)
        ++conflict_;
      else
        ++capacity_m_;
    } else {
      seen_.insert(line);
    }
  }
  return hit;
}

void CacheModel::flush() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  seen_.clear();
  fa_lru_.clear();
  fa_pos_.clear();
  reset_counters();
}

MemoryTracer::MemoryTracer() : MemoryTracer(Config{}) {}

MemoryTracer::MemoryTracer(const Config& cfg)
    : l1_(cfg.l1_capacity, cfg.l1_line, cfg.l1_assoc),
      l2_(cfg.l2_capacity, cfg.l2_line, cfg.l2_assoc),
      tlb_(static_cast<std::uint64_t>(cfg.tlb_entries) * cfg.page_size,
           cfg.page_size, cfg.tlb_entries) {}

void MemoryTracer::touch(const void* ptr, std::size_t bytes) {
  const std::uint64_t addr = reinterpret_cast<std::uint64_t>(ptr);
  const std::uint64_t last = addr + (bytes ? bytes - 1 : 0);
  // Walk the smallest line granularity; feed each level its own lines.
  const std::uint64_t l1_line = l1_.line_size();
  for (std::uint64_t a = addr & ~(l1_line - 1); a <= last; a += l1_line) {
    if (!l1_.access(a)) l2_.access(a);
    tlb_.access(a);
  }
}

void MemoryTracer::reset_counters() {
  l1_.reset_counters();
  l2_.reset_counters();
  tlb_.reset_counters();
}

void MemoryTracer::flush() {
  l1_.flush();
  l2_.flush();
  tlb_.flush();
}

void MemoryTracer::publish_counters(const std::string& prefix) const {
  auto& reg = obs::Registry::global();
  reg.count(prefix + ".accesses", static_cast<long long>(l1_.accesses()));
  reg.count(prefix + ".l1.misses", static_cast<long long>(l1_.misses()));
  reg.count(prefix + ".l2.misses", static_cast<long long>(l2_.misses()));
  reg.count(prefix + ".tlb.misses", static_cast<long long>(tlb_.misses()));
  if (l1_.accesses() > 0)
    reg.set_gauge(prefix + ".l1.miss_rate",
                  static_cast<double>(l1_.misses()) /
                      static_cast<double>(l1_.accesses()));
  if (l2_.accesses() > 0)
    reg.set_gauge(prefix + ".l2.miss_rate",
                  static_cast<double>(l2_.misses()) /
                      static_cast<double>(l2_.accesses()));
}

}  // namespace f3d::simcache
