#pragma once
// Trace-driven memory-hierarchy simulator — the stand-in for the R10000
// hardware counters of the paper's Figure 3. Models set-associative LRU
// caches and a TLB; instrumented kernels feed it the addresses the real
// kernels touch, so miss counts respond to data layout exactly the way
// the hardware counters did.

#include <cstdint>
#include <list>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace f3d::simcache {

/// Set-associative LRU cache (also used as a TLB with line = page size).
///
/// Optionally classifies misses with the classical 3C taxonomy, the
/// decomposition behind the paper's Eq. 1/2 (which bound the *conflict*
/// misses a layout causes):
///  * compulsory — line never seen before;
///  * capacity   — would also miss in a fully associative LRU cache of
///                 the same capacity;
///  * conflict   — hits in the fully associative model, misses here
///                 (set-mapping artifact).
class CacheModel {
public:
  /// capacity and line_size in bytes; associativity in ways (use
  /// num_lines for fully associative). classify_misses enables the 3C
  /// bookkeeping (adds a shadow fully-associative simulation).
  CacheModel(std::uint64_t capacity, std::uint32_t line_size,
             std::uint32_t associativity, bool classify_misses = false);

  /// Touch one line-aligned address; returns true on hit.
  bool access(std::uint64_t addr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const { return hits_ + misses_; }
  [[nodiscard]] std::uint32_t line_size() const { return line_size_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  // 3C counters (zero unless classify_misses was set).
  [[nodiscard]] std::uint64_t compulsory_misses() const { return compulsory_; }
  [[nodiscard]] std::uint64_t capacity_misses() const { return capacity_m_; }
  [[nodiscard]] std::uint64_t conflict_misses() const { return conflict_; }

  void reset_counters() {
    hits_ = misses_ = compulsory_ = capacity_m_ = conflict_ = 0;
  }
  /// Also invalidate contents (cold restart).
  void flush();

private:
  std::uint64_t capacity_;
  std::uint32_t line_size_;
  std::uint32_t assoc_;
  std::uint32_t num_sets_;
  int line_shift_;
  bool classify_;
  std::uint64_t hits_ = 0, misses_ = 0;
  std::uint64_t compulsory_ = 0, capacity_m_ = 0, conflict_ = 0;
  // tags_[set*assoc + way]; lru_[same] = last-use stamp; 0 tag = invalid
  // (we store tag+1).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t clock_ = 0;
  // 3C bookkeeping: lines ever touched, plus a shadow fully-associative
  // LRU of identical capacity (ordered-set emulation).
  std::set<std::uint64_t> seen_;
  std::list<std::uint64_t> fa_lru_;  ///< front = most recent line
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> fa_pos_;
};

/// The three-level hierarchy the Figure 3 experiment models: L1 + L2
/// data caches and a TLB. Every byte range touched is walked line by line
/// through all three.
class MemoryTracer {
public:
  struct Config {
    // R10000-like defaults (SGI Origin 2000 node, as in the paper).
    std::uint64_t l1_capacity = 32 * 1024;
    std::uint32_t l1_line = 32;
    std::uint32_t l1_assoc = 2;
    std::uint64_t l2_capacity = 4 * 1024 * 1024;
    std::uint32_t l2_line = 128;
    std::uint32_t l2_assoc = 2;
    std::uint32_t tlb_entries = 64;
    std::uint32_t page_size = 4096;
  };

  MemoryTracer();  ///< R10000-like defaults
  explicit MemoryTracer(const Config& cfg);

  /// Record an access of `bytes` bytes at `ptr`.
  void touch(const void* ptr, std::size_t bytes);

  [[nodiscard]] const CacheModel& l1() const { return l1_; }
  [[nodiscard]] const CacheModel& l2() const { return l2_; }
  [[nodiscard]] const CacheModel& tlb() const { return tlb_; }

  void reset_counters();
  void flush();

  /// Push the current hit/miss totals into the process-wide observability
  /// registry as counters "<prefix>.l1.misses", "<prefix>.l2.misses",
  /// "<prefix>.tlb.misses", "<prefix>.accesses" plus miss-rate gauges.
  void publish_counters(const std::string& prefix) const;

private:
  CacheModel l1_, l2_, tlb_;
};

/// No-op tracer: lets the traced kernels be instantiated at zero cost for
/// plain timing runs (policy-based design; see DESIGN.md §4.2).
struct NullTracer {
  void touch(const void*, std::size_t) {}
};

}  // namespace f3d::simcache
