#include "par/failslow.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace f3d::par {

namespace {

// Consistency factor making MAD estimate the standard deviation of a
// normal distribution.
constexpr double kMadToSigma = 1.4826;

}  // namespace

const char* slow_mitigation_name(SlowMitigation m) {
  switch (m) {
    case SlowMitigation::kNone: return "none";
    case SlowMitigation::kRetry: return "retry";
    case SlowMitigation::kRepartition: return "repartition";
    case SlowMitigation::kQuarantine: return "quarantine";
  }
  return "unknown";
}

const char* rank_health_name(RankHealth h) {
  switch (h) {
    case RankHealth::kHealthy: return "healthy";
    case RankHealth::kSuspected: return "suspected";
    case RankHealth::kConfirmedSlow: return "confirmed-slow";
    case RankHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    // Lower middle is the max of the left half after nth_element.
    const double lo =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (lo + m);
  }
  return m;
}

double mad_of(const std::vector<double>& v, double center) {
  if (v.empty()) return 0;
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::abs(x - center));
  return median_of(std::move(dev));
}

double hash01(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  // SplitMix64-style finalizer over a simple combination of the keys.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (a + 1) +
                    0xd1342543de82ef95ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

SlowRankDetector::SlowRankDetector(int nranks, DetectorOptions opts)
    : opts_(opts) {
  F3D_CHECK_MSG(nranks >= 1, "SlowRankDetector needs at least one rank");
  F3D_CHECK_MSG(opts_.window >= 1 && opts_.window <= 64,
                "DetectorOptions.window must be in [1, 64]");
  F3D_CHECK_MSG(opts_.confirm >= 1 && opts_.confirm <= opts_.window,
                "DetectorOptions.confirm must be in [1, window]");
  F3D_CHECK_MSG(opts_.z_threshold > 0,
                "DetectorOptions.z_threshold must be positive");
  F3D_CHECK_MSG(opts_.mad_floor_frac >= 0,
                "DetectorOptions.mad_floor_frac must be non-negative");
  ranks_.resize(static_cast<std::size_t>(nranks));
}

std::vector<int> SlowRankDetector::observe(
    int step, const std::vector<double>& rank_step_seconds,
    const std::vector<std::uint8_t>* alive) {
  const int n = nranks();
  F3D_CHECK_MSG(static_cast<int>(rank_step_seconds.size()) == n,
                "SlowRankDetector::observe: telemetry size != nranks");
  if (alive != nullptr)
    F3D_CHECK_MSG(static_cast<int>(alive->size()) == n,
                  "SlowRankDetector::observe: alive size != nranks");

  auto active = [&](int r) {
    const auto& st = ranks_[static_cast<std::size_t>(r)];
    if (st.health == RankHealth::kQuarantined) return false;
    return alive == nullptr || (*alive)[static_cast<std::size_t>(r)] != 0;
  };

  std::vector<double> sample;
  sample.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    if (active(r)) sample.push_back(rank_step_seconds[static_cast<std::size_t>(r)]);
  std::vector<int> confirmed;
  if (sample.size() < 3) return confirmed;  // no robust baseline

  const double med = median_of(sample);
  const double mad = mad_of(sample, med);
  const double sigma =
      kMadToSigma * std::max(mad, opts_.mad_floor_frac * std::abs(med));
  const std::uint64_t window_mask =
      opts_.window == 64 ? ~0ULL : ((1ULL << opts_.window) - 1);

  auto& registry = obs::Registry::global();
  for (int r = 0; r < n; ++r) {
    auto& st = ranks_[static_cast<std::size_t>(r)];
    if (!active(r)) {
      st.last_z = 0;
      continue;
    }
    const double x = rank_step_seconds[static_cast<std::size_t>(r)];
    const double z = sigma > 0 ? (x - med) / sigma : 0;
    st.last_z = z;
    const bool suspect = z > opts_.z_threshold;
    st.mask = ((st.mask << 1) | (suspect ? 1ULL : 0ULL)) & window_mask;
    if (suspect) {
      ++suspected_events_;
      registry.count("par.slow_suspected");
      if (st.first_suspect_step < 0) st.first_suspect_step = step;
    } else if (st.mask == 0) {
      st.first_suspect_step = -1;  // suspicion run fully aged out
    }
    const int hits = std::popcount(st.mask);
    if (st.health != RankHealth::kConfirmedSlow) {
      if (hits >= opts_.confirm) {
        st.health = RankHealth::kConfirmedSlow;
        st.confirm_latency = step - st.first_suspect_step + 1;
        ++confirmed_ranks_;
        registry.count("par.slow_confirmed");
        registry.set_gauge("par.slow_detect_latency_steps",
                           static_cast<double>(st.confirm_latency));
        confirmed.push_back(r);
      } else {
        st.health =
            st.mask != 0 ? RankHealth::kSuspected : RankHealth::kHealthy;
      }
    }
  }
  return confirmed;
}

RankHealth SlowRankDetector::health(int rank) const {
  F3D_CHECK(rank >= 0 && rank < nranks());
  return ranks_[static_cast<std::size_t>(rank)].health;
}

double SlowRankDetector::last_z(int rank) const {
  F3D_CHECK(rank >= 0 && rank < nranks());
  return ranks_[static_cast<std::size_t>(rank)].last_z;
}

int SlowRankDetector::detect_latency(int rank) const {
  F3D_CHECK(rank >= 0 && rank < nranks());
  return ranks_[static_cast<std::size_t>(rank)].confirm_latency;
}

void SlowRankDetector::quarantine(int rank) {
  F3D_CHECK(rank >= 0 && rank < nranks());
  auto& st = ranks_[static_cast<std::size_t>(rank)];
  st.health = RankHealth::kQuarantined;
  st.mask = 0;
}

void SlowRankDetector::reset(int rank) {
  F3D_CHECK(rank >= 0 && rank < nranks());
  auto& st = ranks_[static_cast<std::size_t>(rank)];
  const int latency = st.confirm_latency;
  st = RankState{};
  st.confirm_latency = latency;  // keep the detection record
}

}  // namespace f3d::par
