#include "par/distres.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/buddy.hpp"
#include "resilience/checkpoint.hpp"

namespace f3d::par {

const char* recovery_policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kSpareRank: return "spare-rank";
    case RecoveryPolicy::kShrinkRepartition: return "shrink-repartition";
  }
  return "?";
}

CampaignDomain make_domain(const mesh::Graph& g, part::Partition p) {
  CampaignDomain d;
  d.graph = &g;
  d.load = measure_load(g, p);
  d.partition = std::move(p);
  return d;
}

CampaignDomain make_domain(PartitionLoad synthesized) {
  CampaignDomain d;
  d.load = std::move(synthesized);
  return d;
}

PartitionLoad shrink_load(const PartitionLoad& in) {
  F3D_CHECK_MSG(in.procs >= 2, "cannot shrink a 1-processor load");
  PartitionLoad out = in;
  const double grow =
      static_cast<double>(in.procs) / static_cast<double>(in.procs - 1);
  out.procs = in.procs - 1;
  out.active_procs = std::min(in.active_procs, out.procs);
  // Bulk work spreads over one fewer processor...
  out.avg_owned = in.avg_owned * grow;
  out.avg_edges = in.avg_edges * grow;
  // ...but the dead subdomain lands on its ~avg_neighbors neighbors, so
  // the critical-path processor gains a neighbor's share of a whole
  // subdomain — worse than the average, which is the point: shrink
  // recovery trades spare hardware for load imbalance.
  const double share = 1.0 / std::max(in.avg_neighbors, 1.0);
  out.max_owned = std::max(in.max_owned, in.avg_owned * (1.0 + share));
  out.max_edges = std::max(in.max_edges, in.avg_edges * (1.0 + share));
  // Absorbing a neighbor's vertices merges the shared interface away but
  // inherits the dead rank's other interfaces: surface terms stay put.
  return out;
}

namespace {

// Modeled cost (seconds) of moving one rank's checkpoint payload to or
// from its buddy: wire transfer plus a memory copy on each side plus a
// CRC pass on each side. All ranks mirror concurrently, so one transfer
// is the campaign-level cost of a buddy checkpoint.
double transfer_cost(const perf::MachineModel& machine, double bytes,
                     double checksum_bw_fraction) {
  const double crc_bw = checksum_bw_fraction * machine.mem_bw_mbs * 1e6;
  return machine.net_latency_us * 1e-6 + bytes / (machine.net_bw_mbs * 1e6) +
         2.0 * bytes / (machine.mem_bw_mbs * 1e6) + 2.0 * bytes / crc_bw;
}

}  // namespace

CampaignResult simulate_campaign(const perf::MachineModel& machine,
                                 const CampaignDomain& domain,
                                 const WorkCoefficients& work,
                                 const std::vector<StepCounts>& steps,
                                 const CampaignOptions& opts) {
  F3D_CHECK_MSG(opts.injector != nullptr,
                "simulate_campaign needs a fault injector");
  F3D_CHECK(!steps.empty());
  const int nranks = domain.load.procs;
  F3D_CHECK(nranks >= 1);
  resilience::InjectorScope scope(opts.injector);

  CampaignResult r;
  r.rank_alive.assign(static_cast<std::size_t>(nranks), 1);
  PartitionLoad load = domain.load;
  part::Partition part = domain.partition;
  const bool have_mesh =
      domain.graph != nullptr && part.nparts == nranks &&
      part.num_vertices() == static_cast<int>(domain.load.total_vertices);
  int alive = nranks;
  int spares_left =
      opts.policy == RecoveryPolicy::kSpareRank ? opts.spare_ranks : 0;
  const CommReliability* comm = opts.comm ? &*opts.comm : nullptr;
  const double checksum_frac = comm != nullptr ? comm->checksum_bw_fraction
                                               : 0.5;

  // Per-rank checkpoint payload: the subdomain's restart image.
  const double doubles_per_vertex = opts.checkpoint_doubles_per_vertex > 0
                                        ? opts.checkpoint_doubles_per_vertex
                                        : work.nb;
  const double ckpt_bytes = load.max_owned * doubles_per_vertex *
                            sizeof(double);
  const double ckpt_cost = transfer_cost(machine, ckpt_bytes, checksum_frac);
  r.checkpoint_cost_s = ckpt_cost;

  resilience::BuddyStore buddy(nranks);
  double since_ckpt = 0;  // useful seconds to re-execute after a failure

  auto do_checkpoint = [&](int step) {
    resilience::PtcCheckpoint ck;
    ck.step = step;
    ck.rank_alive = r.rank_alive;
    ck.spares_used = r.spares_used;
    ck.last_buddy_checkpoint_step = step;
    ck.has_injector = true;
    ck.injector = opts.injector->state();
    const std::string payload = resilience::encode_checkpoint(ck);
    for (int rank = 0; rank < nranks; ++rank)
      if (r.rank_alive[static_cast<std::size_t>(rank)]) buddy.store(rank, payload);
    r.t_checkpoint += ckpt_cost;
    r.log.add(step, resilience::RecoveryAction::kBuddyCheckpoint,
              std::to_string(alive) + " ranks mirrored");
    since_ckpt = 0;
  };
  do_checkpoint(0);

  const int nsteps = static_cast<int>(steps.size());
  for (int s = 0; s < nsteps; ++s) {
    F3D_OBS_SPAN("campaign.step");
    StepBreakdown b = model_step(machine, load, work,
                                 steps[static_cast<std::size_t>(s)], opts.mode,
                                 comm);
    since_ckpt += b.total() - b.t_recovery;

    // The fail-stop process: one seeded opportunity per alive rank, in
    // rank order, so a run is reproducible from the injector seed alone.
    std::vector<int> failed;
    for (int rank = 0; rank < nranks; ++rank)
      if (r.rank_alive[static_cast<std::size_t>(rank)] &&
          resilience::fault_fires(resilience::FaultSite::kRankFail))
        failed.push_back(rank);

    if (!failed.empty()) {
      // All of this step's failures are simultaneous: buddy copies die
      // before any recovery runs, so losing a rank AND its buddy in one
      // step hits the diskless double-failure window for real.
      for (int f : failed) {
        buddy.fail_rank(f);
        r.rank_alive[static_cast<std::size_t>(f)] = 0;
        --alive;
        ++r.rank_failures;
        obs::Registry::global().count("par.rank_failures");
        r.log.add(s, resilience::RecoveryAction::kDetectRankFail,
                  "rank " + std::to_string(f));
      }
      if (alive == 0) {
        r.completed = false;
        r.log.add(s, resilience::RecoveryAction::kDetectRankFail,
                  "no surviving rank");
        r.sim.add_step(b);
        ++r.steps_executed;
        break;
      }
      double restore = 0;
      for (int f : failed) {
        const auto blob = buddy.retrieve(f);
        std::optional<resilience::PtcCheckpoint> ck;
        if (blob) ck = resilience::decode_checkpoint(*blob);
        if (!ck) {
          r.completed = false;
          r.log.add(s, resilience::RecoveryAction::kBuddyRestore,
                    "rank " + std::to_string(f) +
                        ": state lost (rank and buddy died before re-mirror)");
          break;
        }
        restore += transfer_cost(machine, ckpt_bytes, checksum_frac);
        r.log.add(s, resilience::RecoveryAction::kBuddyRestore,
                  "rank " + std::to_string(f) + " from checkpoint at step " +
                      std::to_string(ck->last_buddy_checkpoint_step));
        if (spares_left > 0) {
          buddy.revive_rank(f);
          r.rank_alive[static_cast<std::size_t>(f)] = 1;
          ++alive;
          --spares_left;
          ++r.spares_used;
          restore += opts.spare_boot_s;
          r.log.add(s, resilience::RecoveryAction::kSpareSubstitution,
                    "rank " + std::to_string(f) + " (" +
                        std::to_string(spares_left) + " spares left)");
        } else {
          ++r.shrink_events;
          if (have_mesh) {
            part::RepartitionReport rep;
            part = part::repartition_after_failure(*domain.graph, part, f,
                                                   &rep);
            load = measure_load(*domain.graph, part);
            load.procs = alive;  // reduction tree spans the survivors
            r.log.add(s, resilience::RecoveryAction::kShrinkRepartition,
                      std::to_string(rep.moved_vertices) + " vertices to " +
                          std::to_string(rep.receiving_parts) +
                          " parts, imbalance " +
                          std::to_string(rep.imbalance_after));
          } else {
            load = shrink_load(load);
            r.log.add(s, resilience::RecoveryAction::kShrinkRepartition,
                      "analytic shrink to " + std::to_string(load.procs) +
                          " ranks");
          }
          restore += opts.repartition_flops_per_vertex *
                     (load.total_vertices / alive) /
                     (machine.flux_mflops() * 1e6);
        }
      }
      if (!r.completed) {
        r.sim.add_step(b);
        ++r.steps_executed;
        break;
      }
      // Everyone rolls back to the last buddy checkpoint and re-executes
      // the work since it; then the recovered configuration re-mirrors.
      b.t_recovery += since_ckpt + restore;
      r.t_rework += since_ckpt;
      r.t_restore += restore;
      r.sim.add_step(b);
      ++r.steps_executed;
      do_checkpoint(s);
      continue;
    }

    // Silent halo corruption: one kBitFlip/kHalo opportunity per alive
    // rank on each clean step (a step with a rank failure already rolls
    // everyone back, clearing any coincident flip). The wire CRC was
    // satisfied — the flip happened in memory, not on the link — so
    // detection is entirely up to the receiving rank's downstream guards.
    bool sdc_rollback = false;
    for (int rank = 0; rank < nranks; ++rank) {
      if (!r.rank_alive[static_cast<std::size_t>(rank)]) continue;
      if (!resilience::bitflip_fires(resilience::FlipTarget::kHalo)) continue;
      ++r.sdc_injected;
      obs::Registry::global().count("par.halo_bitflips");
      const int bit = opts.injector->bit_flip().bit;
      if (opts.sdc_guards && bit >= opts.sdc_caught_min_bit) {
        ++r.sdc_caught;
        obs::Registry::global().count("resilience.sdc_detected");
        r.log.add(s, resilience::RecoveryAction::kDetectSdc,
                  "halo payload bit " + std::to_string(bit) + " flipped into rank " +
                      std::to_string(rank) + ", caught downstream");
        sdc_rollback = true;
      } else {
        ++r.sdc_escaped;
        obs::Registry::global().count("resilience.sdc_escaped");
      }
    }
    if (sdc_rollback) {
      const double restore = transfer_cost(machine, ckpt_bytes, checksum_frac);
      b.t_recovery += since_ckpt + restore;
      r.t_rework += since_ckpt;
      r.t_restore += restore;
      r.log.add(s, resilience::RecoveryAction::kSdcRollback,
                "rolled back to last buddy checkpoint");
      r.sim.add_step(b);
      ++r.steps_executed;
      do_checkpoint(s);
      continue;
    }

    r.sim.add_step(b);
    ++r.steps_executed;
    if (opts.checkpoint_interval > 0 &&
        (s + 1) % opts.checkpoint_interval == 0 && s + 1 < nsteps)
      do_checkpoint(s + 1);
  }

  r.sim.finalize(domain.load.procs);
  r.final_load = load;
  return r;
}

double daly_optimal_interval(double checkpoint_cost_s, double mtbf_s) {
  F3D_CHECK(checkpoint_cost_s >= 0 && mtbf_s > 0);
  return std::sqrt(2.0 * checkpoint_cost_s * mtbf_s);
}

double daly_overhead(double interval_s, double checkpoint_cost_s,
                     double restart_s, double mtbf_s) {
  F3D_CHECK(interval_s > 0 && mtbf_s > 0);
  return checkpoint_cost_s / interval_s +
         (interval_s / 2.0 + restart_s) / mtbf_s;
}

}  // namespace f3d::par
