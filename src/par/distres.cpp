#include "par/distres.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "resilience/bitflip.hpp"
#include "resilience/buddy.hpp"
#include "resilience/checkpoint.hpp"

namespace f3d::par {

const char* recovery_policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kSpareRank: return "spare-rank";
    case RecoveryPolicy::kShrinkRepartition: return "shrink-repartition";
  }
  return "?";
}

CampaignDomain make_domain(const mesh::Graph& g, part::Partition p) {
  CampaignDomain d;
  d.graph = &g;
  d.load = measure_load(g, p);
  d.partition = std::move(p);
  return d;
}

CampaignDomain make_domain(PartitionLoad synthesized) {
  CampaignDomain d;
  d.load = std::move(synthesized);
  return d;
}

PartitionLoad shrink_load(const PartitionLoad& in) {
  F3D_CHECK_MSG(in.procs >= 2, "cannot shrink a 1-processor load");
  PartitionLoad out = in;
  const double grow =
      static_cast<double>(in.procs) / static_cast<double>(in.procs - 1);
  out.procs = in.procs - 1;
  out.active_procs = std::min(in.active_procs, out.procs);
  // Bulk work spreads over one fewer processor...
  out.avg_owned = in.avg_owned * grow;
  out.avg_edges = in.avg_edges * grow;
  // ...but the dead subdomain lands on its ~avg_neighbors neighbors, so
  // the critical-path processor gains a neighbor's share of a whole
  // subdomain — worse than the average, which is the point: shrink
  // recovery trades spare hardware for load imbalance.
  const double share = 1.0 / std::max(in.avg_neighbors, 1.0);
  out.max_owned = std::max(in.max_owned, in.avg_owned * (1.0 + share));
  out.max_edges = std::max(in.max_edges, in.avg_edges * (1.0 + share));
  // Absorbing a neighbor's vertices merges the shared interface away but
  // inherits the dead rank's other interfaces: surface terms stay put.
  return out;
}

namespace {

// Modeled cost (seconds) of moving one rank's checkpoint payload to or
// from its buddy: wire transfer plus a memory copy on each side plus a
// CRC pass on each side. All ranks mirror concurrently, so one transfer
// is the campaign-level cost of a buddy checkpoint.
double transfer_cost(const perf::MachineModel& machine, double bytes,
                     double checksum_bw_fraction) {
  const double crc_bw = checksum_bw_fraction * machine.mem_bw_mbs * 1e6;
  return machine.net_latency_us * 1e-6 + bytes / (machine.net_bw_mbs * 1e6) +
         2.0 * bytes / (machine.mem_bw_mbs * 1e6) + 2.0 * bytes / crc_bw;
}

}  // namespace

CampaignResult simulate_campaign(const perf::MachineModel& machine,
                                 const CampaignDomain& domain,
                                 const WorkCoefficients& work,
                                 const std::vector<StepCounts>& steps,
                                 const CampaignOptions& opts) {
  F3D_CHECK_MSG(opts.injector != nullptr,
                "simulate_campaign needs a fault injector");
  F3D_CHECK(!steps.empty());
  const int nranks = domain.load.procs;
  F3D_CHECK(nranks >= 1);
  resilience::InjectorScope scope(opts.injector);

  CampaignResult r;
  r.rank_alive.assign(static_cast<std::size_t>(nranks), 1);
  PartitionLoad load = domain.load;
  part::Partition part = domain.partition;
  const bool have_mesh =
      domain.graph != nullptr && part.nparts == nranks &&
      part.num_vertices() == static_cast<int>(domain.load.total_vertices);
  int alive = nranks;
  int spares_left =
      opts.policy == RecoveryPolicy::kSpareRank ? opts.spare_ranks : 0;
  const auto rung = [&](SlowMitigation m) {
    return static_cast<int>(opts.slow_mitigation) >= static_cast<int>(m);
  };
  CommReliability comm_local;
  const CommReliability* comm = nullptr;
  if (opts.comm) {
    comm_local = *opts.comm;
    if (rung(SlowMitigation::kRetry) && comm_local.halo_timeout_us <= 0) {
      // Mitigation rung 1 (retry): arm the halo timeout at the healthy
      // latency plus 4x the healthy transfer time. Only the bandwidth
      // term is multiplied — latency is the same on sick and healthy
      // links — so a link cut below 1/4 bandwidth trips the fallback
      // re-post while a healthy send never can.
      const double msg_bytes = load.max_ghosts * work.nb * sizeof(double) /
                               std::max(load.max_neighbors, 1.0);
      comm_local.halo_timeout_us =
          machine.net_latency_us + 4.0 * msg_bytes / machine.net_bw_mbs;
    }
    comm = &comm_local;
  }
  const double checksum_frac = comm != nullptr ? comm->checksum_bw_fraction
                                               : 0.5;

  // Per-rank checkpoint payload: the subdomain's restart image.
  const double doubles_per_vertex = opts.checkpoint_doubles_per_vertex > 0
                                        ? opts.checkpoint_doubles_per_vertex
                                        : work.nb;
  const double ckpt_bytes = load.max_owned * doubles_per_vertex *
                            sizeof(double);
  const double ckpt_cost = transfer_cost(machine, ckpt_bytes, checksum_frac);
  r.checkpoint_cost_s = ckpt_cost;

  resilience::BuddyStore buddy(nranks);
  double since_ckpt = 0;  // useful seconds to re-execute after a failure
  int ckpt_interval = opts.checkpoint_interval;  // retuned under fail-slow

  // --- fail-slow state -------------------------------------------------
  // Physical condition of each logical rank's processor: a persistent
  // compute slowdown (kSlowRank, max over fires), a persistent link
  // bandwidth factor (kDegradedLink, min over fires), and this step's
  // transient OS-noise stretch (kJitter). Survives rollbacks — the sick
  // hardware does not heal when the solver rewinds — and resets only
  // when a spare takes the rank over.
  std::vector<double> rank_slow(static_cast<std::size_t>(nranks), 1.0);
  std::vector<double> rank_link(static_cast<std::size_t>(nranks), 1.0);
  std::vector<double> jit(static_cast<std::size_t>(nranks), 0.0);
  std::vector<double> telemetry(static_cast<std::size_t>(nranks), 0.0);
  // Per-rank load share (weighted-repartition aware): share_r = the
  // rank's vertex count over the ideal, so the perturbation terms see a
  // slow rank shrink off the critical path after a rebalance.
  std::vector<double> share(static_cast<std::size_t>(nranks), 1.0);
  auto update_share = [&]() {
    if (!have_mesh) return;
    std::vector<int> size(static_cast<std::size_t>(nranks), 0);
    for (int v = 0; v < part.num_vertices(); ++v)
      ++size[static_cast<std::size_t>(part.part[static_cast<std::size_t>(v)])];
    int nonempty = 0;
    std::int64_t tot = 0;
    for (int sz : size) {
      if (sz > 0) ++nonempty;
      tot += sz;
    }
    const double ideal =
        nonempty > 0 ? static_cast<double>(tot) / nonempty : 1.0;
    for (int p2 = 0; p2 < nranks; ++p2)
      share[static_cast<std::size_t>(p2)] =
          size[static_cast<std::size_t>(p2)] / ideal;
  };
  update_share();
  // Floor the detector's sigma at the machine's own jitter amplitude:
  // benign noise bounded by +/-machine.jitter then maps to clean
  // z-scores of at most 2/1.4826 ~= 1.35, whatever the machine — the
  // zero-false-positive guarantee (see failslow.hpp).
  DetectorOptions dopts = opts.detector;
  dopts.mad_floor_frac = std::max(dopts.mad_floor_frac, machine.jitter);
  SlowRankDetector detector(nranks, dopts);

  auto do_checkpoint = [&](int step) {
    resilience::PtcCheckpoint ck;
    ck.step = step;
    ck.rank_alive = r.rank_alive;
    ck.spares_used = r.spares_used;
    ck.last_buddy_checkpoint_step = step;
    ck.has_injector = true;
    ck.injector = opts.injector->state();
    const std::string payload = resilience::encode_checkpoint(ck);
    for (int rank = 0; rank < nranks; ++rank)
      if (r.rank_alive[static_cast<std::size_t>(rank)]) buddy.store(rank, payload);
    r.t_checkpoint += ckpt_cost;
    r.log.add(step, resilience::RecoveryAction::kBuddyCheckpoint,
              std::to_string(alive) + " ranks mirrored");
    since_ckpt = 0;
  };
  do_checkpoint(0);

  const int nsteps = static_cast<int>(steps.size());
  for (int s = 0; s < nsteps; ++s) {
    F3D_OBS_SPAN("campaign.step");

    // Run-to-completion guard at the step boundary. The modeled-seconds
    // budget is deterministic (no wall clock involved); the cancel token
    // is cooperative with one-modeled-step latency. Either exit keeps
    // every accounting field consistent — the campaign simply ends here
    // with a verdict instead of burning the remaining steps.
    if (opts.cancel != nullptr && opts.cancel->requested()) {
      r.completed = false;
      r.verdict = guard::SolveVerdict::kCancelled;
      r.log.add(s, resilience::RecoveryAction::kGuardTrip,
                "campaign cancelled after " + std::to_string(s) + " step(s)");
      break;
    }
    if (opts.budget_modeled_s > 0 &&
        r.total_seconds() >= opts.budget_modeled_s) {
      r.completed = false;
      r.verdict = guard::SolveVerdict::kDeadline;
      r.log.add(s, resilience::RecoveryAction::kGuardTrip,
                "modeled budget exhausted after " + std::to_string(s) +
                    " step(s)");
      break;
    }

    // Fail-slow opportunities: one per site per alive rank, in rank
    // order, drawn on EVERY step whether the sites are armed or not —
    // the streams advance identically across mitigation policies, so
    // policy arms of a sweep face the same fault sequence.
    std::fill(jit.begin(), jit.end(), 0.0);
    for (int rank = 0; rank < nranks; ++rank) {
      if (!r.rank_alive[static_cast<std::size_t>(rank)]) continue;
      if (resilience::fault_fires(resilience::FaultSite::kSlowRank))
        rank_slow[static_cast<std::size_t>(rank)] =
            std::max(rank_slow[static_cast<std::size_t>(rank)],
                     opts.injector->magnitude(resilience::FaultSite::kSlowRank));
      if (resilience::fault_fires(resilience::FaultSite::kJitter)) {
        // Draw the stretch from the fire tag (a pure function of the
        // fire count): no extra PRNG draws, checkpoint-exact.
        const double u =
            static_cast<double>(
                opts.injector->fire_tag(resilience::FaultSite::kJitter) >> 11) *
            0x1.0p-53;
        jit[static_cast<std::size_t>(rank)] =
            opts.injector->magnitude(resilience::FaultSite::kJitter) * u;
      }
      if (resilience::fault_fires(resilience::FaultSite::kDegradedLink))
        rank_link[static_cast<std::size_t>(rank)] = std::min(
            rank_link[static_cast<std::size_t>(rank)],
            opts.injector->magnitude(resilience::FaultSite::kDegradedLink));
    }

    // Fold the per-rank condition into the step model's perturbation:
    // the share-weighted slowest rank gates the critical path, the mean
    // stretch raises the busy baseline, the worst link cuts the wire.
    StepPerturbation perturb;
    {
      double sum_w = 0, sum_wf = 0, max_w = 0, max_wf = 0, link_min = 1.0;
      for (int rank = 0; rank < nranks; ++rank) {
        if (!r.rank_alive[static_cast<std::size_t>(rank)]) continue;
        const double w = share[static_cast<std::size_t>(rank)];
        const double f = rank_slow[static_cast<std::size_t>(rank)] *
                         (1.0 + jit[static_cast<std::size_t>(rank)]);
        sum_w += w;
        sum_wf += w * f;
        max_w = std::max(max_w, w);
        max_wf = std::max(max_wf, w * f);
        link_min =
            std::min(link_min, rank_link[static_cast<std::size_t>(rank)]);
      }
      perturb.avg_slowdown = sum_w > 0 ? std::max(1.0, sum_wf / sum_w) : 1.0;
      perturb.crit_slowdown =
          std::max(perturb.avg_slowdown, max_w > 0 ? max_wf / max_w : 1.0);
      perturb.link_factor = link_min;
    }

    StepBreakdown b = model_step(machine, load, work,
                                 steps[static_cast<std::size_t>(s)], opts.mode,
                                 comm, &perturb);

    // --- fail-slow detection: share-normalized per-rank telemetry ------
    // Modeled seconds per unit of work for each rank: the healthy mean
    // busy time stretched by the rank's compute factor and by bounded
    // benign noise (+/- machine.jitter, a pure hash — deterministic and
    // thread-count independent), plus the rank's own halo-send stall on
    // its degraded links. Normalizing by the load share keeps a big-but-
    // healthy subdomain from ever looking like a straggler, which is the
    // clean-campaign zero-false-positive guarantee.
    const double busy_h = (b.t_flux + b.t_sparse) / perturb.avg_slowdown;
    for (int rank = 0; rank < nranks; ++rank) {
      if (!r.rank_alive[static_cast<std::size_t>(rank)]) {
        telemetry[static_cast<std::size_t>(rank)] = 0;
        continue;
      }
      const double eps =
          machine.jitter *
          (2.0 * hash01(opts.injector->seed(), static_cast<std::uint64_t>(s),
                        static_cast<std::uint64_t>(rank)) -
           1.0);
      const double f = rank_slow[static_cast<std::size_t>(rank)] *
                       (1.0 + jit[static_cast<std::size_t>(rank)]);
      double link_stretch = 1.0 / rank_link[static_cast<std::size_t>(rank)];
      // The timeout re-post bounds the visible stall on a sick link.
      if (b.halo_timeouts > 0) link_stretch = std::min(link_stretch, 1.5);
      const double x =
          busy_h * f * (1.0 + eps) + 0.3 * busy_h * (link_stretch - 1.0);
      telemetry[static_cast<std::size_t>(rank)] = x;
      if (nranks <= 64)
        obs::Registry::global().add_time(
            "par.rank_busy_s." + std::to_string(rank), x);
    }
    const std::vector<int> confirmed_now =
        detector.observe(s, telemetry, &r.rank_alive);

    // --- mitigation ladder for newly confirmed slow ranks --------------
    double slow_restore = 0;
    for (int cr : confirmed_now) {
      ++r.slow_confirmed;
      r.log.add(s, resilience::RecoveryAction::kDetectSlowRank,
                "rank " + std::to_string(cr) + " z=" +
                    std::to_string(detector.last_z(cr)) + " after " +
                    std::to_string(detector.detect_latency(cr)) + " steps");
      bool handled = false;
      if (rung(SlowMitigation::kQuarantine) && spares_left > 0) {
        // Rung 3: live-migrate the rank to a spare processor. The
        // subdomain state moves over the wire once; the sick node
        // retires, so its condition resets.
        slow_restore +=
            transfer_cost(machine, ckpt_bytes, checksum_frac) +
            opts.spare_boot_s;
        rank_slow[static_cast<std::size_t>(cr)] = 1.0;
        rank_link[static_cast<std::size_t>(cr)] = 1.0;
        detector.reset(cr);
        --spares_left;
        ++r.spares_used;
        ++r.slow_quarantined;
        obs::Registry::global().count("par.slow_quarantined");
        r.log.add(s, resilience::RecoveryAction::kQuarantineSlowRank,
                  "rank " + std::to_string(cr) + " migrated to spare (" +
                      std::to_string(spares_left) + " spares left)");
        handled = true;
      }
      if (!handled && rung(SlowMitigation::kRepartition) && have_mesh) {
        // Rung 2: shift load off the slow rank in proportion to its
        // MEASURED speed (telemetry relative to the step median — the
        // controller never peeks at the injected truth).
        std::vector<double> sample;
        for (int rank = 0; rank < nranks; ++rank)
          if (r.rank_alive[static_cast<std::size_t>(rank)])
            sample.push_back(telemetry[static_cast<std::size_t>(rank)]);
        const double med = median_of(std::move(sample));
        std::vector<double> speed(static_cast<std::size_t>(nranks), 1.0);
        for (int rank = 0; rank < nranks; ++rank) {
          if (!r.rank_alive[static_cast<std::size_t>(rank)] || med <= 0)
            continue;
          const double fhat =
              telemetry[static_cast<std::size_t>(rank)] / med;
          speed[static_cast<std::size_t>(rank)] =
              std::clamp(1.0 / std::max(fhat, 1e-6), 0.05, 1.0);
        }
        part::RepartitionReport rep;
        part = part::repartition_for_imbalance(*domain.graph, part, speed,
                                               &rep);
        if (rep.moved_vertices > 0) {
          load = measure_load(*domain.graph, part);
          load.procs = alive;
          update_share();
        }
        slow_restore += opts.repartition_flops_per_vertex *
                        (load.total_vertices / std::max(alive, 1)) /
                        (machine.flux_mflops() * 1e6);
        ++r.weighted_repartitions;
        obs::Registry::global().count("par.weighted_repartitions");
        r.log.add(s, resilience::RecoveryAction::kWeightedRepartition,
                  std::to_string(rep.moved_vertices) +
                      " vertices off rank " + std::to_string(cr) +
                      ", weighted imbalance " +
                      std::to_string(rep.imbalance_before) + " -> " +
                      std::to_string(rep.imbalance_after));
        handled = true;
      }
      // Rung 1 (retry) needs no per-event action: the halo timeout is
      // armed in the comm model for the whole campaign.
    }
    if (!confirmed_now.empty() && ckpt_interval > 0 && ckpt_cost > 0 &&
        opts.slow_mitigation != SlowMitigation::kNone) {
      // Cross-cutting (any active rung): fail-slow escalates the
      // effective fault rate, so retune
      // the checkpoint interval to the Young/Daly optimum for the MTBF
      // observed so far (never beyond the configured interval).
      const int events = r.rank_failures + r.slow_confirmed;
      const double elapsed = r.sim.total_seconds + b.total();
      const double avg_step =
          elapsed / static_cast<double>(r.steps_executed + 1);
      if (events > 0 && avg_step > 0) {
        const double tau =
            daly_optimal_interval(ckpt_cost, elapsed / events);
        int want = std::max(
            1, static_cast<int>(std::lround(tau / avg_step)));
        want = std::min(want, opts.checkpoint_interval);
        if (want != ckpt_interval) {
          r.log.add(s, resilience::RecoveryAction::kCheckpointRetune,
                    "interval " + std::to_string(ckpt_interval) + " -> " +
                        std::to_string(want) + " steps");
          ckpt_interval = want;
          ++r.checkpoint_retunes;
          obs::Registry::global().count("par.checkpoint_retunes");
        }
      }
    }
    if (slow_restore > 0) {
      b.t_recovery += slow_restore;
      r.t_restore += slow_restore;
    }

    since_ckpt += b.total() - b.t_recovery;

    // The fail-stop process: one seeded opportunity per alive rank, in
    // rank order, so a run is reproducible from the injector seed alone.
    std::vector<int> failed;
    for (int rank = 0; rank < nranks; ++rank)
      if (r.rank_alive[static_cast<std::size_t>(rank)] &&
          resilience::fault_fires(resilience::FaultSite::kRankFail))
        failed.push_back(rank);

    if (!failed.empty()) {
      // All of this step's failures are simultaneous: buddy copies die
      // before any recovery runs, so losing a rank AND its buddy in one
      // step hits the diskless double-failure window for real.
      for (int f : failed) {
        buddy.fail_rank(f);
        r.rank_alive[static_cast<std::size_t>(f)] = 0;
        --alive;
        ++r.rank_failures;
        obs::Registry::global().count("par.rank_failures");
        r.log.add(s, resilience::RecoveryAction::kDetectRankFail,
                  "rank " + std::to_string(f));
      }
      if (alive == 0) {
        r.completed = false;
        r.log.add(s, resilience::RecoveryAction::kDetectRankFail,
                  "no surviving rank");
        r.sim.add_step(b);
        ++r.steps_executed;
        break;
      }
      double restore = 0;
      for (int f : failed) {
        const auto blob = buddy.retrieve(f);
        std::optional<resilience::PtcCheckpoint> ck;
        if (blob) ck = resilience::decode_checkpoint(*blob);
        if (!ck) {
          r.completed = false;
          r.log.add(s, resilience::RecoveryAction::kBuddyRestore,
                    "rank " + std::to_string(f) +
                        ": state lost (rank and buddy died before re-mirror)");
          break;
        }
        restore += transfer_cost(machine, ckpt_bytes, checksum_frac);
        r.log.add(s, resilience::RecoveryAction::kBuddyRestore,
                  "rank " + std::to_string(f) + " from checkpoint at step " +
                      std::to_string(ck->last_buddy_checkpoint_step));
        if (spares_left > 0) {
          buddy.revive_rank(f);
          r.rank_alive[static_cast<std::size_t>(f)] = 1;
          ++alive;
          --spares_left;
          ++r.spares_used;
          restore += opts.spare_boot_s;
          // A fresh processor takes the logical rank: its fail-slow
          // condition and detector history start clean.
          rank_slow[static_cast<std::size_t>(f)] = 1.0;
          rank_link[static_cast<std::size_t>(f)] = 1.0;
          detector.reset(f);
          r.log.add(s, resilience::RecoveryAction::kSpareSubstitution,
                    "rank " + std::to_string(f) + " (" +
                        std::to_string(spares_left) + " spares left)");
        } else {
          ++r.shrink_events;
          if (have_mesh) {
            part::RepartitionReport rep;
            part = part::repartition_after_failure(*domain.graph, part, f,
                                                   &rep);
            load = measure_load(*domain.graph, part);
            load.procs = alive;  // reduction tree spans the survivors
            update_share();
            r.log.add(s, resilience::RecoveryAction::kShrinkRepartition,
                      std::to_string(rep.moved_vertices) + " vertices to " +
                          std::to_string(rep.receiving_parts) +
                          " parts, imbalance " +
                          std::to_string(rep.imbalance_after));
          } else {
            load = shrink_load(load);
            r.log.add(s, resilience::RecoveryAction::kShrinkRepartition,
                      "analytic shrink to " + std::to_string(load.procs) +
                          " ranks");
          }
          restore += opts.repartition_flops_per_vertex *
                     (load.total_vertices / alive) /
                     (machine.flux_mflops() * 1e6);
        }
      }
      if (!r.completed) {
        r.sim.add_step(b);
        ++r.steps_executed;
        break;
      }
      // Everyone rolls back to the last buddy checkpoint and re-executes
      // the work since it; then the recovered configuration re-mirrors.
      b.t_recovery += since_ckpt + restore;
      r.t_rework += since_ckpt;
      r.t_restore += restore;
      r.sim.add_step(b);
      ++r.steps_executed;
      do_checkpoint(s);
      continue;
    }

    // Silent halo corruption: one kBitFlip/kHalo opportunity per alive
    // rank on each clean step (a step with a rank failure already rolls
    // everyone back, clearing any coincident flip). The wire CRC was
    // satisfied — the flip happened in memory, not on the link — so
    // detection is entirely up to the receiving rank's downstream guards.
    bool sdc_rollback = false;
    for (int rank = 0; rank < nranks; ++rank) {
      if (!r.rank_alive[static_cast<std::size_t>(rank)]) continue;
      if (!resilience::bitflip_fires(resilience::FlipTarget::kHalo)) continue;
      ++r.sdc_injected;
      obs::Registry::global().count("par.halo_bitflips");
      const int bit = opts.injector->bit_flip().bit;
      if (opts.sdc_guards && bit >= opts.sdc_caught_min_bit) {
        ++r.sdc_caught;
        obs::Registry::global().count("resilience.sdc_detected");
        r.log.add(s, resilience::RecoveryAction::kDetectSdc,
                  "halo payload bit " + std::to_string(bit) + " flipped into rank " +
                      std::to_string(rank) + ", caught downstream");
        sdc_rollback = true;
      } else {
        ++r.sdc_escaped;
        obs::Registry::global().count("resilience.sdc_escaped");
      }
    }
    if (sdc_rollback) {
      const double restore = transfer_cost(machine, ckpt_bytes, checksum_frac);
      b.t_recovery += since_ckpt + restore;
      r.t_rework += since_ckpt;
      r.t_restore += restore;
      r.log.add(s, resilience::RecoveryAction::kSdcRollback,
                "rolled back to last buddy checkpoint");
      r.sim.add_step(b);
      ++r.steps_executed;
      do_checkpoint(s);
      continue;
    }

    r.sim.add_step(b);
    ++r.steps_executed;
    if (ckpt_interval > 0 && (s + 1) % ckpt_interval == 0 && s + 1 < nsteps)
      do_checkpoint(s + 1);
  }

  r.slow_suspected = detector.suspected_events();
  for (int rank = 0; rank < nranks; ++rank)
    r.slow_detect_latency_steps =
        std::max(r.slow_detect_latency_steps, detector.detect_latency(rank));
  r.sim.finalize(domain.load.procs);
  r.final_load = load;
  // Unrecoverable exits (state lost, no survivors) set completed=false
  // without a guard verdict; classify them here so every campaign exit
  // lands in the taxonomy.
  if (!r.completed && r.verdict == guard::SolveVerdict::kConverged)
    r.verdict = guard::SolveVerdict::kFaultUnrecoverable;
  return r;
}

double daly_optimal_interval(double checkpoint_cost_s, double mtbf_s) {
  F3D_CHECK(checkpoint_cost_s >= 0 && mtbf_s > 0);
  return std::sqrt(2.0 * checkpoint_cost_s * mtbf_s);
}

double daly_overhead(double interval_s, double checkpoint_cost_s,
                     double restart_s, double mtbf_s) {
  F3D_CHECK(interval_s > 0 && mtbf_s > 0);
  return checkpoint_cost_s / interval_s +
         (interval_s / 2.0 + restart_s) / mtbf_s;
}

}  // namespace f3d::par
