#include "par/loadmodel.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"

namespace f3d::par {

PartitionLoad measure_load(const mesh::Graph& g, const part::Partition& p) {
  const int n = static_cast<int>(g.ptr.size()) - 1;
  F3D_CHECK(p.num_vertices() == n);
  F3D_CHECK(p.nparts >= 1);
  const int np = p.nparts;

  std::vector<double> owned(np, 0), edges(np, 0);
  std::vector<std::set<int>> ghosts(np), nbrs(np);
  double total_edges = 0;
  for (int v = 0; v < n; ++v) {
    const int pv = p.part[v];
    owned[pv] += 1;
    for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e) {
      const int w = g.adj[e];
      if (w > v) total_edges += 1;
      const int pw = p.part[w];
      if (pw != pv) {
        ghosts[pv].insert(w);
        nbrs[pv].insert(pw);
      }
    }
  }
  // Edge work per part: edges with >= 1 endpoint in the part.
  for (int v = 0; v < n; ++v) {
    for (int e = g.ptr[v]; e < g.ptr[v + 1]; ++e) {
      const int w = g.adj[e];
      if (w < v) continue;  // each unique edge once
      const int pv = p.part[v], pw = p.part[w];
      edges[pv] += 1;
      if (pw != pv) edges[pw] += 1;  // redundant computation on both sides
    }
  }

  PartitionLoad load;
  load.procs = np;
  load.total_vertices = n;
  load.total_edges = total_edges;
  // Empty parts (P > N, or dead parts after a fail-stop shrink recovery)
  // model no processor doing work: they are excluded from the averages so
  // the imbalance statistics describe the processors actually computing.
  int active = 0;
  for (int s = 0; s < np; ++s) active += owned[s] > 0 ? 1 : 0;
  load.active_procs = active;
  auto stats = [&](auto get, double& avg, double& mx) {
    avg = 0;
    mx = 0;
    for (int s = 0; s < np; ++s) {
      if (owned[s] <= 0) continue;
      const double v = get(s);
      avg += v;
      mx = std::max(mx, v);
    }
    avg /= std::max(active, 1);
  };
  stats([&](int s) { return owned[s]; }, load.avg_owned, load.max_owned);
  stats([&](int s) { return edges[s]; }, load.avg_edges, load.max_edges);
  stats([&](int s) { return static_cast<double>(ghosts[s].size()); },
        load.avg_ghosts, load.max_ghosts);
  stats([&](int s) { return static_cast<double>(nbrs[s].size()); },
        load.avg_neighbors, load.max_neighbors);
  return load;
}

SurfaceLaw fit_surface_law(const std::vector<PartitionLoad>& samples) {
  F3D_CHECK(!samples.empty());
  SurfaceLaw law;
  double ghost_c = 0, cut_c = 0, nb = 0, epv = 0, imb_c = 0;
  int used = 0;
  for (const auto& s : samples) {
    const double v = s.avg_owned;
    // Samples that cannot constrain the surface scaling are skipped: P=1
    // (every surface quantity identically zero), empty or edgeless
    // decompositions (degenerate after-failure loads). Every division
    // below is guarded by this test.
    if (s.procs < 2 || s.total_vertices <= 0 || v <= 0 || s.avg_edges <= 0)
      continue;
    ++used;
    const double surface = std::pow(v, 2.0 / 3.0);
    ghost_c += s.avg_ghosts / surface;
    // Redundant (doubly counted) edges per proc = avg_edges - unique
    // share; unique share per proc ~ total_edges / procs.
    const double redundant = s.avg_edges - s.total_edges / s.procs;
    cut_c += std::max(0.0, redundant) / surface;
    nb += s.avg_neighbors;
    epv += s.total_edges / s.total_vertices;
    // Imbalance scales like v^(-1/3): recover the coefficient. Edge
    // (flux-work) imbalance is usually worse than vertex imbalance and is
    // what the processors actually wait on, so take the larger.
    const double vi = (s.max_owned / s.avg_owned - 1.0) * std::cbrt(v);
    const double ei = (s.max_edges / s.avg_edges - 1.0) * std::cbrt(v);
    imb_c += std::max(vi, ei);
  }
  if (used == 0) return law;  // all-zero law: defined, finite, no NaN
  const double k = static_cast<double>(used);
  law.ghost_coeff = ghost_c / k;
  law.cut_coeff = cut_c / k;
  law.neighbor_base = nb / k;
  law.edges_per_vertex = epv / k;
  law.imbalance_coeff = imb_c / k;
  return law;
}

PartitionLoad synthesize_load(double total_vertices, int procs,
                              const SurfaceLaw& law) {
  F3D_CHECK(total_vertices > 0 && procs >= 1);
  PartitionLoad load;
  load.procs = procs;
  load.active_procs = procs;
  load.total_vertices = total_vertices;
  load.total_edges = law.edges_per_vertex * total_vertices;
  const double v = total_vertices / procs;
  const double surface = std::pow(v, 2.0 / 3.0);
  const double imbalance = law.imbalance_at(v);
  load.avg_owned = v;
  load.max_owned = v * imbalance;
  load.avg_ghosts = procs == 1 ? 0 : law.ghost_coeff * surface;
  load.max_ghosts = load.avg_ghosts * imbalance;
  load.avg_edges =
      load.total_edges / procs + (procs == 1 ? 0 : law.cut_coeff * surface);
  load.max_edges = load.avg_edges * imbalance;
  load.avg_neighbors = procs == 1 ? 0 : law.neighbor_base;
  load.max_neighbors = load.avg_neighbors * 1.5;
  return load;
}

}  // namespace f3d::par
