#pragma once
// Per-processor load statistics of a domain decomposition, and the
// surface-law fit that extrapolates them to the paper's 2.8M-vertex /
// 3072-node scale.
//
// Everything here is either *measured from a real partition* of a real
// mesh (measure_load) or synthesized from a fit to those measurements
// (fit_surface_law + synthesize_load): ghosts and cut edges scale like
// the subdomain surface ~ (N/P)^(2/3), the physics behind the paper's
// observation that "with an increase in the number of subdomains, the
// percentage of grid point data that must be communicated also rises".

#include <cmath>
#include <vector>

#include "mesh/graph.hpp"
#include "partition/partition.hpp"

namespace f3d::par {

struct PartitionLoad {
  int procs = 0;
  /// Parts that actually own vertices. After a fail-stop shrink recovery
  /// (part::repartition_after_failure) the dead parts are empty;
  /// measure_load excludes them from the per-processor averages and
  /// reports the survivors here. Equals `procs` for healthy partitions.
  int active_procs = 0;
  double total_vertices = 0;
  // Per-processor statistics over non-empty parts (avg and max capture
  // load imbalance).
  double avg_owned = 0, max_owned = 0;          ///< owned vertices
  double avg_ghosts = 0, max_ghosts = 0;        ///< remote vertices read
  double avg_neighbors = 0, max_neighbors = 0;  ///< distinct peer procs
  /// Edges each processor computes in the flux loop: all edges incident
  /// to an owned vertex. Cut edges are counted by BOTH sides — the
  /// redundant work whose growth degrades large-P efficiency (Fig 1).
  double avg_edges = 0, max_edges = 0;
  double total_edges = 0;  ///< unique mesh edges
};

/// Measure the real load of a partition. Degenerate inputs are defined:
/// P = 1 yields zero ghosts/neighbors; P > N (or a post-failure partition
/// with empty parts) averages over the non-empty parts only; an empty
/// graph yields an all-zero load.
PartitionLoad measure_load(const mesh::Graph& g, const part::Partition& p);

/// Power-law fit of per-processor surface quantities against subdomain
/// volume v = N/P:  ghosts ~ ghost_coeff * v^(2/3), etc.
struct SurfaceLaw {
  double edges_per_vertex = 0;   ///< bulk connectivity (~7 for tets)
  double ghost_coeff = 0;        ///< ghosts ~ c * v^(2/3)
  double cut_coeff = 0;          ///< redundant edges ~ c * v^(2/3)
  /// Load imbalance worsens as subdomains shrink (fewer vertices to
  /// balance over): max/avg = 1 + imbalance_coeff * v^(-1/3). This is
  /// the mechanism behind Table 3's growing "implicit synchronization"
  /// share.
  double imbalance_coeff = 0;
  double neighbor_base = 0;      ///< typical neighbor count (≈ constant)

  [[nodiscard]] double imbalance_at(double vertices_per_part) const {
    return 1.0 + imbalance_coeff /
                     std::cbrt(std::max(vertices_per_part, 1.0));
  }
};

/// Fit the law to measured samples. Samples that cannot constrain the fit
/// (no vertices, no edges, or zero average load — e.g. a P=1 measurement,
/// where every surface quantity is identically zero, or a degenerate
/// post-failure load) are skipped; if no sample is usable the returned
/// law is all-zero (synthesize_load then yields a zero-communication
/// load), never NaN. Throws only on an empty sample vector.
SurfaceLaw fit_surface_law(const std::vector<PartitionLoad>& samples);

/// Synthesize the load of an (N, P) decomposition from the law.
PartitionLoad synthesize_load(double total_vertices, int procs,
                              const SurfaceLaw& law);

}  // namespace f3d::par
