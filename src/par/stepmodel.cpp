#include "par/stepmodel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "resilience/faults.hpp"

namespace f3d::par {

namespace {

double log2ceil(double p) { return p <= 1 ? 0.0 : std::ceil(std::log2(p)); }

}  // namespace

double model_flux_phase(const perf::MachineModel& machine,
                        const PartitionLoad& load,
                        const WorkCoefficients& work, NodeMode mode) {
  const double flops_max = load.max_edges * work.flux_flops_per_edge;
  const double bytes_max = load.max_edges * work.flux_bytes_per_edge;
  const double rate = machine.flux_mflops() * 1e6;  // per CPU
  const double node_bw = machine.mem_bw_mbs * 1e6;
  switch (mode) {
    case NodeMode::kMpi1:
      // Instruction-bound on one CPU, unless the node bus cannot keep up.
      return std::max(flops_max / rate, bytes_max / node_bw);
    case NodeMode::kMpi2: {
      // Two ranks per node, each on its own CPU at full issue rate, but
      // streaming two separate address spaces through the shared bus.
      // `load` already reflects the doubled rank count, so per-rank work
      // is halved while the node-level byte stream is 2x the per-rank
      // bytes (with the extra cut-edge redundancy of the finer
      // decomposition baked into load.max_edges).
      return std::max(flops_max / rate, 2.0 * bytes_max / node_bw);
    }
    case NodeMode::kHybridOmp2: {
      // Two threads split one subdomain's edges: half the compute, one
      // shared data stream. Afterwards the replicated residual arrays
      // must be gathered — 3 passes over owned*nb doubles (read both
      // replicas, write the sum), the OpenMP overhead the paper calls
      // out. When the arrays fit in cache the gather is nearly free;
      // at large subdomains it is a full memory-bandwidth pass. This
      // cache-residency flip is what moves the §2.5 crossover in favor
      // of the hybrid model only at high node counts (Table 5).
      const double t_compute =
          std::max(flops_max / rate / 2.0, bytes_max / node_bw);
      const double array_bytes = load.max_owned * work.nb * sizeof(double);
      const double gather_bytes = 3.0 * array_bytes;
      const double gather_bw = (2.0 * array_bytes <= machine.l2_bytes)
                                   ? node_bw * machine.cache_bw_multiple
                                   : node_bw;
      return t_compute + gather_bytes / gather_bw;
    }
  }
  return 0;
}

StepBreakdown model_step(const perf::MachineModel& machine,
                         const PartitionLoad& load,
                         const WorkCoefficients& work, const StepCounts& counts,
                         NodeMode mode, const CommReliability* comm,
                         const StepPerturbation* perturb) {
  F3D_CHECK(load.procs >= 1);
  StepBreakdown out;
  if (perturb != nullptr) {
    F3D_CHECK_MSG(perturb->crit_slowdown >= 1.0 &&
                      perturb->avg_slowdown >= 1.0 &&
                      perturb->crit_slowdown >= perturb->avg_slowdown - 1e-12,
                  "StepPerturbation slowdowns must satisfy "
                  "crit >= avg >= 1");
    F3D_CHECK_MSG(perturb->link_factor > 0.0 && perturb->link_factor <= 1.0,
                  "StepPerturbation.link_factor must lie in (0, 1]");
    F3D_CHECK_MSG(perturb->jitter >= 0.0,
                  "StepPerturbation.jitter must be non-negative");
    out.crit_slowdown = perturb->crit_slowdown;
    out.link_factor = perturb->link_factor;
    out.jitter_extra = perturb->jitter;
  }

  // Fault-injection site: a slow (or effectively failed) rank stretches
  // the critical-path load of this step by the injector's magnitude while
  // the average stays put — pure imbalance, the straggler signature.
  PartitionLoad eff;
  const PartitionLoad* lp = &load;
  if (resilience::fault_fires(resilience::FaultSite::kRank)) {
    const double slow =
        resilience::active_injector()->magnitude(resilience::FaultSite::kRank);
    eff = load;
    eff.max_edges *= slow;
    eff.max_owned *= slow;
    out.straggler = true;
    lp = &eff;
  }
  // Fail-slow compute terms: the slowest rank's busy time gates every
  // implicit synchronization (critical path), while the mean stretch
  // raises the busy baseline — the max-avg gap below turns the
  // difference into imbalance wait.
  if (perturb != nullptr && !perturb->trivial()) {
    if (lp != &eff) eff = load;
    eff.max_edges *= perturb->crit_slowdown;
    eff.max_owned *= perturb->crit_slowdown;
    eff.avg_edges *= perturb->avg_slowdown;
    eff.avg_owned *= perturb->avg_slowdown;
    lp = &eff;
  }
  const PartitionLoad& load_eff = *lp;

  const double flux_evals = counts.flux_evals > 0
                                ? counts.flux_evals
                                : counts.linear_its + 3.0;

  // --- flux phase(s): instruction-bound compute ---------------------
  const double t_flux_max = model_flux_phase(machine, load_eff, work, mode);
  const double t_flux_avg =
      t_flux_max * (load_eff.avg_edges / std::max(load_eff.max_edges, 1.0));
  out.t_flux = flux_evals * t_flux_avg;

  // --- sparse linear algebra: memory-bandwidth-bound ------------------
  // Per node bandwidth is shared by colocated ranks.
  const int ranks_per_node = mode == NodeMode::kMpi2 ? 2 : 1;
  const double bw = machine.mem_bw_mbs * 1e6 / ranks_per_node;
  const double sparse_bytes_max =
      load_eff.max_owned * work.sparse_bytes_per_vertex_it;
  const double sparse_bytes_avg =
      load_eff.avg_owned * work.sparse_bytes_per_vertex_it;
  const double t_sparse_max = counts.linear_its * sparse_bytes_max / bw;
  out.t_sparse = counts.linear_its * sparse_bytes_avg / bw;

  // --- imbalance waits at communication events -------------------------
  // Every scatter or reduction synchronizes; the wait is the max-vs-avg
  // gap of the compute since the previous event, and removing individual
  // sync points only moves the wait to the next event (the paper's
  // observation). The total wait is the step's (max - avg) compute gap;
  // following the paper's measurement methodology it shows up spread
  // across whichever communication routine the processor blocks in, so we
  // attribute it 50% to the dedicated "implicit synchronization" bucket
  // and 25% each to the reduction and scatter buckets.
  const double gap_flux = flux_evals * (t_flux_max - t_flux_avg);
  const double gap_sparse = t_sparse_max - out.t_sparse;
  // Machine jitter adds an imbalance-like wait proportional to busy time;
  // a fail-slow perturbation's transient OS-noise term stacks on top.
  const double jitter_frac =
      machine.jitter + (perturb != nullptr ? perturb->jitter : 0.0);
  const double jitter_wait = jitter_frac * (out.t_flux + out.t_sparse);
  const double wait_total = gap_flux + gap_sparse + jitter_wait;
  out.t_implicit_sync = 0.5 * wait_total;

  // --- global reductions ----------------------------------------------
  const double reductions = counts.linear_its * counts.dots_per_linear_it +
                            2.0;  // + norm checks per step
  out.t_reductions = reductions * log2ceil(load.procs) *
                         machine.allreduce_latency_us * 1e-6 +
                     0.25 * wait_total;

  // --- ghost point scatters -------------------------------------------
  const double scatters =
      counts.linear_its * counts.scatters_per_linear_it + flux_evals;
  const double ghost_bytes = load.max_ghosts * work.nb * work.halo_scalar_bytes;
  const double msg_lat =
      load.max_neighbors * machine.net_latency_us * 1e-6;
  // Message packing/unpacking is a *gather* over scattered vertices, far
  // below streaming bandwidth (~30% of it), performed on both the send
  // and receive sides (pack, unpack, plus the MPI-internal copies): ~6
  // memory passes over the ghost data. This is why the application-level
  // effective bandwidth (Table 3, last column) sits an order of magnitude
  // below the wire bandwidth.
  const double pack_bw = 0.3 * machine.mem_bw_mbs * 1e6;
  const double pack_time = 6.0 * ghost_bytes / pack_bw;
  const double wire_healthy = 2.0 * ghost_bytes / (machine.net_bw_mbs * 1e6);
  double wire_time = wire_healthy;
  const double net_bw = machine.net_bw_mbs * 1e6;
  const double msg_bytes = ghost_bytes / std::max(load.max_neighbors, 1.0);

  // Contention on a degraded link: every message crossing the sick rank's
  // links moves at link_factor * beta, and because the scatter is bulk-
  // synchronous its max_neighbors peers all queue behind those transfers
  // — the stretched wire time lands on the global critical path.
  const double link =
      perturb != nullptr ? perturb->link_factor : 1.0;
  double t_timeout_recovery = 0;
  if (link < 1.0) {
    const double per_msg_degraded =
        machine.net_latency_us * 1e-6 + msg_bytes / (net_bw * link);
    const bool timeout_fires = comm != nullptr && comm->halo_timeout_us > 0 &&
                               per_msg_degraded > comm->halo_timeout_us * 1e-6;
    if (timeout_fires) {
      // Mitigation rung 1: cancel the stalled send at the timeout and
      // re-post it on the fallback path (secondary NIC / alternate
      // route) at healthy bandwidth. The timeout wait, one capped
      // backoff, and the re-posted transfer latency are charged to
      // t_recovery; the scatter itself completes at healthy beta.
      const int ops = static_cast<int>(std::lround(scatters));
      const double backoff =
          std::min(comm->backoff0_us, comm->backoff_max_us) * 1e-6;
      const double repost = machine.net_latency_us * 1e-6 + msg_bytes / net_bw;
      t_timeout_recovery =
          ops * (comm->halo_timeout_us * 1e-6 + backoff + repost);
      out.halo_timeouts += ops;
    } else {
      wire_time = wire_healthy / link;
    }
  }
  out.t_scatter =
      scatters * (msg_lat + wire_time + pack_time) + 0.25 * wait_total;
  out.t_recovery += t_timeout_recovery;

  // --- lossy interconnect: checksums + retransmit with backoff ---------
  if (comm != nullptr) {
    // Checksum tax: one CRC pass over the ghost payload on each side of
    // every scatter, at a fraction of streaming bandwidth.
    const double crc_bw =
        comm->checksum_bw_fraction * machine.mem_bw_mbs * 1e6;
    out.t_scatter += scatters * 2.0 * ghost_bytes / crc_bw;
    // One corruption opportunity per communication operation. A fired
    // message backs off exponentially and resends; each retry draws again
    // at the same site, so a burst of fires models a noisy link.
    const double msg_resend = machine.net_latency_us * 1e-6 +
                              msg_bytes / (machine.net_bw_mbs * 1e6) +
                              2.0 * msg_bytes / crc_bw;
    const double red_resend = log2ceil(load.procs) *
                              machine.allreduce_latency_us * 1e-6;
    auto episode = [&](double resend_cost) {
      double t = 0;
      double backoff = comm->backoff0_us * 1e-6;
      int tries = 0;
      do {
        t += backoff + resend_cost;
        backoff = std::min(backoff * 2.0, comm->backoff_max_us * 1e-6);
        ++out.retransmits;
        obs::Registry::global().count("par.halo_retransmits");
        ++tries;
      } while (tries < comm->max_retries &&
               resilience::fault_fires(resilience::FaultSite::kMessage));
      return t;
    };
    const int scatter_ops = static_cast<int>(std::lround(scatters));
    const int reduce_ops = static_cast<int>(std::lround(reductions));
    for (int i = 0; i < scatter_ops; ++i)
      if (resilience::fault_fires(resilience::FaultSite::kMessage))
        out.t_recovery += episode(msg_resend);
    for (int i = 0; i < reduce_ops; ++i)
      if (resilience::fault_fires(resilience::FaultSite::kMessage))
        out.t_recovery += episode(red_resend);
    // Bound the comm model's charge: however pathological the loss rate
    // or the degraded link, one step's retransmit/timeout recovery never
    // exceeds the configured cap (the campaign driver's rework/restore
    // charges are added later and are not clamped here).
    out.t_recovery = std::min(out.t_recovery, comm->step_recovery_cap_s);
  }

  out.scatter_bytes_total =
      scatters * load.avg_ghosts * work.nb * work.halo_scalar_bytes *
      load.procs;
  const double per_node_bytes =
      scatters * load.avg_ghosts * work.nb * work.halo_scalar_bytes;
  out.effective_bw_per_node_mbs =
      out.t_scatter > 0 ? per_node_bytes / out.t_scatter * 1e-6 : 0;

  // --- total flops for Gflop/s reporting ------------------------------
  const double flux_flops_all =
      flux_evals * load.total_edges * work.flux_flops_per_edge;
  const double sparse_flops_all = counts.linear_its *
                                  load.total_vertices *
                                  work.sparse_flops_per_vertex_it;
  out.flops_total = flux_flops_all + sparse_flops_all;

  return out;
}

void SolveSimulation::add_step(const StepBreakdown& b) {
  if (b.straggler) ++straggler_steps;
  step_seconds.push_back(b.total());
  total_seconds += b.total();
  aggregate.t_flux += b.t_flux;
  aggregate.t_sparse += b.t_sparse;
  aggregate.t_reductions += b.t_reductions;
  aggregate.t_scatter += b.t_scatter;
  aggregate.t_implicit_sync += b.t_implicit_sync;
  aggregate.t_recovery += b.t_recovery;
  aggregate.retransmits += b.retransmits;
  aggregate.halo_timeouts += b.halo_timeouts;
  aggregate.crit_slowdown = std::max(aggregate.crit_slowdown, b.crit_slowdown);
  aggregate.link_factor = std::min(aggregate.link_factor, b.link_factor);
  aggregate.jitter_extra = std::max(aggregate.jitter_extra, b.jitter_extra);
  aggregate.scatter_bytes_total += b.scatter_bytes_total;
  aggregate.flops_total += b.flops_total;
}

void SolveSimulation::finalize(int procs) {
  aggregate.effective_bw_per_node_mbs =
      aggregate.t_scatter > 0
          ? aggregate.scatter_bytes_total / static_cast<double>(procs) /
                aggregate.t_scatter * 1e-6
          : 0;
}

SolveSimulation simulate_solve(const perf::MachineModel& machine,
                               const PartitionLoad& load,
                               const WorkCoefficients& work,
                               const std::vector<StepCounts>& steps,
                               NodeMode mode, const CommReliability* comm) {
  F3D_CHECK(!steps.empty());
  SolveSimulation sim;
  sim.step_seconds.reserve(steps.size());
  for (const auto& counts : steps)
    sim.add_step(model_step(machine, load, work, counts, mode, comm));
  sim.finalize(load.procs);
  return sim;
}

std::vector<EfficiencyRow> efficiency_decomposition(
    const std::vector<ScalingPoint>& points) {
  F3D_CHECK(!points.empty());
  const auto& base = points.front();
  F3D_CHECK(base.time > 0 && base.its > 0);
  std::vector<EfficiencyRow> rows;
  rows.reserve(points.size());
  for (const auto& p : points) {
    EfficiencyRow r;
    r.procs = p.procs;
    r.speedup = base.time / p.time;
    r.eta_overall =
        (base.time * base.procs) / (p.time * static_cast<double>(p.procs));
    r.eta_alg = base.its / p.its;
    r.eta_impl = r.eta_alg > 0 ? r.eta_overall / r.eta_alg : 0;
    rows.push_back(r);
  }
  return rows;
}

}  // namespace f3d::par
