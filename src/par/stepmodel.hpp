#pragma once
// Virtual-machine time model for one psi-NKS pseudo-timestep — the engine
// behind the reproduction of Figures 1, 2, 4 and Tables 3, 5.
//
// Inputs: a machine model (perf::MachineModel), the per-processor load of
// a decomposition (PartitionLoad — measured or surface-law-synthesized),
// per-vertex/per-edge work coefficients calibrated from the real kernels,
// and the *measured* solver counts (linear iterations per step, etc.).
// Output: a per-step time decomposition in the same categories the paper
// reports: flux compute, sparse (memory-bandwidth-bound) compute, global
// reductions, ghost-point scatters, and "implicit synchronizations"
// (idle time from load imbalance at communication events).

#include "par/loadmodel.hpp"
#include "perf/machine.hpp"

namespace f3d::par {

/// Work per unit of mesh, calibrated from the discretization.
struct WorkCoefficients {
  int nb = 4;                       ///< unknowns per vertex
  double flux_flops_per_edge = 75;  ///< one flux evaluation
  /// Memory streamed per edge by the flux loop (edge indices, normals,
  /// state gathers, residual updates). The flux phase is usually
  /// instruction-bound, but colocated MPI ranks share the node bus and
  /// can tip it over (the §2.5 contrast).
  double flux_bytes_per_edge = 60;
  /// Memory traffic of the linear kernels per owned vertex per Krylov
  /// iteration (SpMV on the Jacobian block row + ILU triangular solve).
  double sparse_bytes_per_vertex_it = 0;
  double sparse_flops_per_vertex_it = 0;
  /// Bytes per scalar in the halo payload: 8 for double ghosts, 4 when
  /// the exchange carries single-precision state (the paper's Table 2
  /// observation applied to the wire — float halos halve the beta term
  /// of every ghost scatter while the owned arithmetic stays double).
  double halo_scalar_bytes = 8.0;
};

/// Measured per-pseudo-timestep solver activity.
struct StepCounts {
  double linear_its = 20;     ///< Krylov iterations
  double flux_evals = 0;      ///< residual evaluations (incl. matrix-free
                              ///< matvecs); if 0, derived as
                              ///< linear_its + 3
  double dots_per_linear_it = 4;      ///< global reductions per iteration
  double scatters_per_linear_it = 2;  ///< ghost exchanges per iteration
};

/// Fail-slow perturbation of one modeled step. The campaign driver
/// (par::simulate_campaign) derives it from its per-rank health state —
/// persistent kSlowRank factors, this step's transient kJitter draws,
/// and kDegradedLink bandwidth cuts — and model_step folds it into the
/// alpha-beta machine model:
///   * compute:  the critical-path load stretches by `crit_slowdown`
///     (the slowest rank gates every implicit synchronization) while the
///     average busy time stretches by `avg_slowdown`, so the max-avg gap
///     — the imbalance wait — grows with the straggler's severity;
///   * contention: every halo message to or from the degraded rank's
///     links moves at `link_factor * beta`; bulk-synchronous scatters
///     put that stretched transfer on the global critical path, and the
///     sick rank's `max_neighbors` peers all queue behind it (the
///     contention term of the extended model);
///   * jitter: `jitter` adds a transient OS-noise wait proportional to
///     busy time on top of the machine's baseline jitter.
struct StepPerturbation {
  double crit_slowdown = 1.0;  ///< critical-path compute stretch (>= 1)
  double avg_slowdown = 1.0;   ///< mean compute stretch over ranks (>= 1)
  double link_factor = 1.0;    ///< worst halo-link bandwidth factor, (0, 1]
  double jitter = 0.0;         ///< extra per-step noise wait fraction (>= 0)

  [[nodiscard]] bool trivial() const {
    return crit_slowdown == 1.0 && avg_slowdown == 1.0 &&
           link_factor == 1.0 && jitter == 0.0;
  }
};

/// One pseudo-timestep's modeled time, split the way Table 3 splits it,
/// plus the availability category the distributed resilience model adds.
struct StepBreakdown {
  double t_flux = 0;        ///< busy time, flux phase
  double t_sparse = 0;      ///< busy time, memory-bound linear algebra
  double t_reductions = 0;  ///< global reduction latency
  double t_scatter = 0;     ///< ghost exchange wire+latency time
  double t_implicit_sync = 0;  ///< imbalance-induced wait time
  /// Fault-handling overhead: message retransmits (lossy interconnect
  /// model) plus, in simulate_campaign, the rework/restore charges of a
  /// rank failure absorbed during this step.
  double t_recovery = 0;

  [[nodiscard]] double total() const {
    return t_flux + t_sparse + t_reductions + t_scatter + t_implicit_sync +
           t_recovery;
  }
  [[nodiscard]] double pct(double part) const {
    return total() > 0 ? 100.0 * part / total() : 0;
  }

  /// An injected slow/failed rank (FaultSite::kRank) stretched this step:
  /// the critical-path load was scaled by the injector's magnitude, so the
  /// step shows the imbalance signature of a straggler processor.
  bool straggler = false;
  /// Messages retransmitted this step (FaultSite::kMessage fires under an
  /// armed CommReliability model); their latency is in t_recovery.
  int retransmits = 0;
  /// Halo sends that exceeded CommReliability::halo_timeout_us on a
  /// degraded link and were re-posted on the fallback path; the retry
  /// latency is in t_recovery and the transfer completes at healthy beta.
  int halo_timeouts = 0;
  // Fail-slow diagnostics: the perturbation actually applied (1/1/0 =
  // clean step). Already included in the phase buckets above, never added
  // to total() separately.
  double crit_slowdown = 1.0;
  double link_factor = 1.0;
  double jitter_extra = 0.0;

  double scatter_bytes_total = 0;  ///< data moved per step, all procs
  /// "Application level effective bandwidth per node" (Table 3's last
  /// column): data each node moved / time it spent in scatters.
  double effective_bw_per_node_mbs = 0;
  double flops_total = 0;  ///< all procs, per step
  [[nodiscard]] double gflops() const {
    return total() > 0 ? flops_total / total() * 1e-9 : 0;
  }
};

/// Threading mode of a node (Table 5).
enum class NodeMode {
  kMpi1,       ///< 1 MPI rank per node, second CPU idle
  kMpi2,       ///< 2 MPI ranks per node (decomposition has 2x parts)
  kHybridOmp2, ///< 1 rank per node, 2 OpenMP threads in the flux phase
};

/// Reliability model of the interconnect: every halo-exchange and
/// reduction message carries a CRC (a per-message checksum tax on both
/// sides); a corrupted message — one FaultSite::kMessage opportunity per
/// scatter/reduction operation — is detected on receive and
/// retransmitted after an exponential backoff, each retry drawing again
/// at the same site until it passes or `max_retries` is spent. The retry
/// latency is charged to StepBreakdown::t_recovery.
struct CommReliability {
  double checksum_bw_fraction = 0.5;  ///< CRC pass speed vs. memory bw
  double backoff0_us = 50.0;          ///< first retransmit backoff
  int max_retries = 4;                ///< per message; all attempts charged
  /// Cap on the exponential backoff: the doubling stops here, so a
  /// pathological loss rate (or a huge max_retries) charges at most
  /// max_retries * (backoff_max + resend) per episode instead of growing
  /// geometrically without bound.
  double backoff_max_us = 3200.0;
  /// Hard clamp on the retransmit/timeout recovery time charged to one
  /// step's StepBreakdown::t_recovery by the comm model (the campaign
  /// driver's rework/restore charges land on top and are not clamped).
  double step_recovery_cap_s = 30.0;
  /// Fail-slow mitigation rung 1: a halo send whose modeled transfer time
  /// on a degraded link exceeds this timeout is cancelled and re-posted on
  /// the fallback path (secondary NIC / alternate route) at healthy
  /// bandwidth, after a capped exponential backoff charged to t_recovery.
  /// 0 disables the timeout — the sender waits out the sick link.
  double halo_timeout_us = 0.0;
};

/// Model one pseudo-timestep. `load.procs` is the number of MPI ranks
/// (for kMpi2 that is 2x the node count). A non-null `comm` enables the
/// lossy-interconnect model (messages only corrupt when an injector arms
/// FaultSite::kMessage; the checksum tax applies regardless). A non-null
/// `perturb` applies a fail-slow perturbation (slow ranks, degraded
/// links, transient jitter) to the alpha-beta model.
StepBreakdown model_step(const perf::MachineModel& machine,
                         const PartitionLoad& load,
                         const WorkCoefficients& work, const StepCounts& counts,
                         NodeMode mode = NodeMode::kMpi1,
                         const CommReliability* comm = nullptr,
                         const StepPerturbation* perturb = nullptr);

/// Model only the flux (function-evaluation) phase — Table 5's object.
double model_flux_phase(const perf::MachineModel& machine,
                        const PartitionLoad& load,
                        const WorkCoefficients& work, NodeMode mode);

/// Aggregate model of a full psi-NKS solve: one StepCounts entry per
/// pseudo-timestep (e.g. taken from a real run's history, where early
/// steps solve easy systems and later steps at high CFL need more
/// iterations). Sums the per-step breakdowns.
struct SolveSimulation {
  double total_seconds = 0;
  std::vector<double> step_seconds;
  StepBreakdown aggregate;  ///< phase times summed over steps
  int straggler_steps = 0;  ///< steps stretched by an injected slow rank

  /// Fold one modeled step into the totals (used by simulate_solve and by
  /// the campaign driver, whose load changes between steps).
  void add_step(const StepBreakdown& b);
  /// Recompute the aggregate effective bandwidth for `procs` processors.
  void finalize(int procs);
};
SolveSimulation simulate_solve(const perf::MachineModel& machine,
                               const PartitionLoad& load,
                               const WorkCoefficients& work,
                               const std::vector<StepCounts>& steps,
                               NodeMode mode = NodeMode::kMpi1,
                               const CommReliability* comm = nullptr);

/// The paper's efficiency decomposition (Table 3):
///   eta_overall = (T0 * P0) / (T * P),  eta_alg = its0 / its,
///   eta_impl = eta_overall / eta_alg.
struct ScalingPoint {
  int procs = 0;
  double its = 0;       ///< linear iterations per step (or total)
  double time = 0;      ///< execution time
};
struct EfficiencyRow {
  int procs = 0;
  double speedup = 0;
  double eta_overall = 0;
  double eta_alg = 0;
  double eta_impl = 0;
};
std::vector<EfficiencyRow> efficiency_decomposition(
    const std::vector<ScalingPoint>& points);

}  // namespace f3d::par
