#pragma once
// Fail-slow tolerance for the virtual parallel machine: the outlier
// detector that turns per-rank step-time telemetry into slow-rank
// verdicts, and the mitigation-ladder vocabulary the campaign driver
// (par::simulate_campaign) and bench_failslow share.
//
// A fail-slow rank degrades without dying — thermal throttle, a sick
// NIC, OS noise — so there is no hard failure event to react to, only a
// statistical signature in the telemetry. The detector is deliberately
// robust rather than clever: per step it computes the median and MAD of
// the alive ranks' busy times and flags any rank whose robust z-score
//
//   z_r = (x_r - median) / (1.4826 * max(MAD, mad_floor_frac * median))
//
// exceeds `z_threshold`; a rank is *confirmed* slow once it was flagged
// on `confirm` of the last `window` steps. Median/MAD (not mean/stddev)
// keeps the baseline itself immune to the straggler it is hunting, and
// the MAD floor keeps a near-degenerate spread (every rank identical up
// to jitter) from amplifying benign noise into a detection. The
// false-positive bound: noise bounded by +/-b (relative) moves any
// sample at most 2b from the sample median, so with mad_floor_frac >= b
// the clean z-score never exceeds 2b / (1.4826 * b) ~= 1.35 — far under
// the threshold of 4, for ANY noise amplitude. The campaign driver
// floors the sigma at the machine's own jitter amplitude for exactly
// this reason; that is the clean-campaign zero-false-positive guarantee
// the tier-1 tests pin down.

#include <cstdint>
#include <vector>

namespace f3d::par {

/// How far up the mitigation ladder a campaign is allowed to climb once
/// the detector confirms a slow rank. Each rung includes the ones below.
enum class SlowMitigation {
  kNone = 0,        ///< detect and log only (the control arm)
  kRetry,           ///< halo timeout + capped-backoff re-post on the
                    ///< fallback path (CommReliability::halo_timeout_us)
  kRepartition,     ///< + shift load off the slow rank in proportion to
                    ///< its measured speed (part::repartition_for_imbalance)
  kQuarantine,      ///< + migrate the confirmed-slow rank to a spare and
                    ///< retune the checkpoint interval (Young/Daly) for
                    ///< the observed fail-slow escalation rate
};
[[nodiscard]] const char* slow_mitigation_name(SlowMitigation m);

/// Detector verdict for one rank.
enum class RankHealth {
  kHealthy = 0,
  kSuspected,      ///< outlier on >= 1 of the last `window` steps
  kConfirmedSlow,  ///< outlier on >= `confirm` of the last `window` steps
  kQuarantined,    ///< confirmed and migrated off; ignored until reset
};
[[nodiscard]] const char* rank_health_name(RankHealth h);

struct DetectorOptions {
  double z_threshold = 4.0;  ///< robust z-score needed to suspect a rank
  int window = 8;            ///< sliding window length, in steps (<= 64)
  int confirm = 3;           ///< suspected steps in window to confirm
  /// Floor on the robust sigma, as a fraction of the step median. This is
  /// the false-positive guard: benign noise bounded by +/-`b` (relative)
  /// can never produce |z| > 2b / (1.4826 * mad_floor_frac), so set the
  /// floor at (or above) the expected noise amplitude and clean z stays
  /// under ~1.35. The campaign driver raises this floor to the machine's
  /// jitter automatically; the default suits sub-1% noise.
  double mad_floor_frac = 0.005;
};

/// Sliding-window median/MAD outlier detector over per-rank step times.
/// Deterministic and thread-count independent: verdicts depend only on
/// the observed time vectors, never on iteration order or wall clock.
///
/// Tallies into obs::Registry::global():
///   counter `par.slow_suspected`  — one per (rank, step) outlier flag
///   counter `par.slow_confirmed`  — one per rank crossing the confirm bar
///   gauge   `par.slow_detect_latency_steps` — steps from a rank's first
///           suspicion to its confirmation (last confirmation wins)
class SlowRankDetector {
 public:
  explicit SlowRankDetector(int nranks, DetectorOptions opts = {});

  /// Fold one step's telemetry in. `rank_step_seconds` holds one entry
  /// per rank; ranks that are dead or quarantined still occupy a slot
  /// (pass any value — they are excluded via `alive`, or pass nullptr
  /// for all-alive). Returns the ranks newly *confirmed* slow this step,
  /// ascending.
  std::vector<int> observe(int step,
                           const std::vector<double>& rank_step_seconds,
                           const std::vector<std::uint8_t>* alive = nullptr);

  [[nodiscard]] RankHealth health(int rank) const;
  /// Robust z-score of the rank at the last observed step (diagnostics).
  [[nodiscard]] double last_z(int rank) const;
  /// Steps from first suspicion to confirmation for a confirmed rank
  /// (-1 if never confirmed).
  [[nodiscard]] int detect_latency(int rank) const;

  /// Mark a confirmed rank as migrated off; observe() ignores it.
  void quarantine(int rank);
  /// A fresh processor took the logical rank over (spare migration):
  /// clear its history and start it healthy.
  void reset(int rank);

  [[nodiscard]] int suspected_events() const { return suspected_events_; }
  [[nodiscard]] int confirmed_ranks() const { return confirmed_ranks_; }
  [[nodiscard]] const DetectorOptions& options() const { return opts_; }
  [[nodiscard]] int nranks() const { return static_cast<int>(ranks_.size()); }

 private:
  struct RankState {
    std::uint64_t mask = 0;  ///< bit i = suspected on the i-th last step
    RankHealth health = RankHealth::kHealthy;
    int first_suspect_step = -1;  ///< of the current suspicion run
    int confirm_latency = -1;
    double last_z = 0;
  };
  DetectorOptions opts_;
  std::vector<RankState> ranks_;
  int suspected_events_ = 0;
  int confirmed_ranks_ = 0;
};

/// Median of `v` (by value: the copy is sorted). Empty input returns 0.
[[nodiscard]] double median_of(std::vector<double> v);
/// Median absolute deviation of `v` around `center`.
[[nodiscard]] double mad_of(const std::vector<double>& v, double center);

/// Deterministic hash of (seed, a, b) to a uniform in [0, 1) — the
/// benign-noise generator for synthesized telemetry. A pure function:
/// consumes no PRNG draws, so it cannot perturb fault-injection streams.
[[nodiscard]] double hash01(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b);

}  // namespace f3d::par
