#pragma once
// Distributed resilience for the virtual parallel machine: a fail-stop
// rank-failure process (FaultSite::kRankFail, one seeded opportunity per
// alive rank per modeled step), two recovery policies — spare-rank
// substitution and shrink-and-repartition — buddy (diskless neighbor)
// checkpointing with rework/restore accounting charged into
// StepBreakdown::t_recovery, and the Young/Daly availability model that
// bench_availability validates the simulator against. This is the paper's
// analytic-modeling spirit extended from performance to availability: the
// machine model predicts not just how fast a step runs but how much of a
// campaign's wall clock survives failures.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "guard/guard.hpp"
#include "mesh/graph.hpp"
#include "par/failslow.hpp"
#include "par/loadmodel.hpp"
#include "par/stepmodel.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"
#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"

namespace f3d::par {

/// What replaces a dead rank.
enum class RecoveryPolicy {
  /// A spare node takes over the logical rank: the decomposition (and so
  /// the step time) is unchanged, at the price of idle spares and a boot
  /// + state-transfer delay per failure.
  kSpareRank,
  /// The survivors absorb the dead rank's subdomain
  /// (part::repartition_after_failure): no spares needed, but the
  /// PartitionLoad degrades — the receivers' extra load shows up as
  /// implicit-synchronization time in every subsequent step.
  kShrinkRepartition,
};
[[nodiscard]] const char* recovery_policy_name(RecoveryPolicy policy);

/// The domain a campaign runs on: a real graph + partition (required for
/// real shrink repartitioning) or just a synthesized load (spare-rank
/// campaigns and large-P availability sweeps; shrink then falls back to
/// the analytic shrink_load transform).
struct CampaignDomain {
  const mesh::Graph* graph = nullptr;
  part::Partition partition;
  PartitionLoad load;
};
CampaignDomain make_domain(const mesh::Graph& g, part::Partition p);
CampaignDomain make_domain(PartitionLoad synthesized);

/// Analytic one-rank shrink of a load with no mesh to repartition: the
/// dead rank's subdomain spreads over its ~avg_neighbors neighbors, so
/// the average per-survivor load rises by 1/(P-1) of a subdomain and the
/// critical path gains a neighbor's share of a full subdomain.
PartitionLoad shrink_load(const PartitionLoad& in);

struct CampaignOptions {
  RecoveryPolicy policy = RecoveryPolicy::kSpareRank;
  int spare_ranks = 2;         ///< spare pool (kSpareRank; falls back to
                               ///< shrink when exhausted)
  int checkpoint_interval = 10;  ///< steps between buddy checkpoints
                                 ///< (0 = only the initial one)
  NodeMode mode = NodeMode::kMpi1;
  std::optional<CommReliability> comm;  ///< lossy-interconnect model

  // Recovery cost knobs (modeled seconds / rates).
  double spare_boot_s = 2.0;  ///< spare wake + join barrier
  double repartition_flops_per_vertex = 200;  ///< shrink compute cost
  /// Checkpoint payload size per owned vertex, in doubles. 0 = just the
  /// state vector (work.nb). A full warm-restart image also carries the
  /// residual, the Jacobian and ILU blocks (~2*nb^2) and the Krylov
  /// basis (~restart*nb) — O(100) doubles/vertex, which is what makes
  /// the Daly checkpoint-interval tradeoff non-trivial.
  double checkpoint_doubles_per_vertex = 0;

  // Silent halo corruption (FaultSite::kBitFlip with FlipTarget::kHalo,
  // one opportunity per alive rank per clean step). The kMessage CRC
  // models LINK corruption — a payload flipped in memory before packing
  // (or after unpacking) checksums as valid on the wire and sails through
  // retransmission. It can only be caught downstream, by the receiving
  // rank's ABFT / admissibility guards, which is what these knobs model:
  // with sdc_guards on, a flip in bit >= sdc_caught_min_bit perturbs the
  // solve enough for a guard to fire (roll back to the last buddy
  // checkpoint and re-execute); lower bits — and every flip with guards
  // off — escape silently into the campaign's answer.
  bool sdc_guards = true;
  int sdc_caught_min_bit = 48;

  // Fail-slow tolerance (FaultSite::kSlowRank / kJitter / kDegradedLink,
  // one opportunity each per alive rank per step — drawn on every step
  // whether armed or not, so fault sequences stay comparable across
  // mitigation policies). The campaign synthesizes share-normalized
  // per-rank telemetry from the perturbed step model, feeds it to a
  // SlowRankDetector, and climbs the mitigation ladder up to
  // `slow_mitigation` when a rank is confirmed slow:
  //   kRetry       — halo timeout + capped-backoff re-post (armed in the
  //                  comm model; auto-derived when halo_timeout_us is 0)
  //   kRepartition — part::repartition_for_imbalance with speeds measured
  //                  from the telemetry (never from the injected truth)
  //   kQuarantine  — migrate the slow rank to a spare (sharing the
  //                  fail-stop spare pool) and retune the checkpoint
  //                  interval for the observed fault escalation
  SlowMitigation slow_mitigation = SlowMitigation::kNone;
  DetectorOptions detector;  ///< outlier-detector tuning

  /// Drives kRankFail (fail-stop), kMessage (lossy interconnect) and
  /// kBitFlip/kHalo (silent halo corruption). Required; the campaign
  /// registers it for the simulation's duration.
  resilience::FaultInjector* injector = nullptr;

  // Run-to-completion guard. The budget is on *modeled* seconds, checked
  // at every step boundary — deterministic by construction (same domain,
  // options and seed trip at the same step, whatever the host machine).
  // The cancel token is cooperative with one-modeled-step latency.
  double budget_modeled_s = 0;           ///< 0 = unbounded
  guard::CancelToken* cancel = nullptr;  ///< optional cancel handle
};

struct CampaignResult {
  SolveSimulation sim;  ///< per-step model; failure charges in t_recovery
  /// False when state was unrecoverable: a rank and its buddy died before
  /// a re-mirror (the diskless double-failure window), no rank survived,
  /// or the run-to-completion guard ended the campaign early (see
  /// verdict). The simulation stops at that step.
  bool completed = true;
  int steps_executed = 0;

  /// Exit taxonomy: kConverged (all steps executed), kDeadline (modeled
  /// budget exhausted), kCancelled (cooperative cancel honored), or
  /// kFaultUnrecoverable (state lost).
  guard::SolveVerdict verdict = guard::SolveVerdict::kConverged;

  int rank_failures = 0;
  int spares_used = 0;
  int shrink_events = 0;

  // Silent halo corruption accounting.
  int sdc_injected = 0;  ///< halo flips delivered past the wire CRC
  int sdc_caught = 0;    ///< caught downstream by the receiving guards
  int sdc_escaped = 0;   ///< reached the campaign's answer undetected

  // Fail-slow accounting.
  int slow_suspected = 0;      ///< (rank, step) outlier flags raised
  int slow_confirmed = 0;      ///< ranks confirmed slow by the detector
  int slow_quarantined = 0;    ///< confirmed ranks migrated to spares
  int weighted_repartitions = 0;  ///< kWeightedRepartition events
  int checkpoint_retunes = 0;  ///< checkpoint-interval adaptations
  /// Largest first-suspicion-to-confirmation latency, in steps (0 when
  /// nothing was confirmed).
  int slow_detect_latency_steps = 0;

  // Availability accounting (all modeled seconds).
  double t_checkpoint = 0;  ///< buddy checkpoint overhead
  double t_rework = 0;      ///< re-executed work since the last checkpoint
  double t_restore = 0;     ///< buddy pull + spare boot / repartition cost
  double checkpoint_cost_s = 0;  ///< per-event buddy checkpoint cost
  [[nodiscard]] double total_seconds() const {
    return sim.total_seconds + t_checkpoint;
  }
  [[nodiscard]] double useful_seconds() const {
    return sim.total_seconds - sim.aggregate.t_recovery;
  }
  /// Fraction of wall clock doing useful work (1 = fault-free).
  [[nodiscard]] double availability() const {
    return total_seconds() > 0 ? useful_seconds() / total_seconds() : 0;
  }

  PartitionLoad final_load;
  std::vector<std::uint8_t> rank_alive;
  resilience::RecoveryLog log;  ///< every failure/recovery event
};

/// Simulate a psi-NKS campaign of `steps` pseudo-timesteps on the virtual
/// machine with fail-stop rank faults armed. Deterministic: the same
/// (domain, options, injector seed) reproduces the identical result
/// bit-for-bit.
CampaignResult simulate_campaign(const perf::MachineModel& machine,
                                 const CampaignDomain& domain,
                                 const WorkCoefficients& work,
                                 const std::vector<StepCounts>& steps,
                                 const CampaignOptions& opts);

// --- Young/Daly availability model ----------------------------------------

/// First-order optimal checkpoint interval sqrt(2 * delta * MTBF)
/// (Young 1974; Daly 2006's leading term), delta = per-checkpoint cost.
double daly_optimal_interval(double checkpoint_cost_s, double mtbf_s);

/// Modeled overhead fraction of checkpointing every `interval_s` of work:
/// delta/tau (checkpoint tax) + (tau/2 + restart)/MTBF (expected rework
/// plus restart per failure). The U-curve bench_availability sweeps.
double daly_overhead(double interval_s, double checkpoint_cost_s,
                     double restart_s, double mtbf_s);

}  // namespace f3d::par
