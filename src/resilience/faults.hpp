#pragma once
// Deterministic fault injection for the solver stack. A FaultInjector is
// armed with a per-site plan (probability draws from a seeded PRNG, or a
// deterministic fire-every-k schedule) and registered process-wide; the
// instrumented sites in the residual evaluation, the Schwarz/ILU
// factorization, the Krylov inner loops, and the parallel step model then
// ask `fault_fires(site)` at each opportunity. Every draw is counted, so
// the injector state can be checkpointed and restored bit-identically
// (see checkpoint.hpp) and every campaign run is reproducible from its
// seed alone.

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "common/rng.hpp"

namespace f3d::resilience {

/// Instrumented locations in the solver stack. GMRES and BiCGStab are
/// separate sites on purpose: a persistent fault in one Krylov method is
/// then recoverable by swapping to the other — exactly the asymmetry the
/// driver's recovery ladder exploits.
enum class FaultSite : int {
  kResidual = 0,     ///< NaN/Inf corruption of a residual evaluation
  kFactorPivot = 1,  ///< zeroed diagonal block before ILU/SSOR factorization
  kGmres = 2,        ///< wiped Arnoldi direction (forced GMRES stagnation)
  kBicgstab = 3,     ///< forced BiCGStab rho/omega breakdown
  kRank = 4,         ///< simulated slow/failed rank in par::stepmodel
  kRankFail = 5,     ///< fail-stop rank loss in the distributed campaign
  kMessage = 6,      ///< corrupted halo-exchange / reduction message
  kBitFlip = 7,      ///< silent finite-value bit flip (SDC; see bitflip.hpp)
  // Fail-slow faults: ranks that degrade without dying (thermal throttle,
  // OS noise, a sick NIC). One opportunity per alive rank per campaign
  // step; the severity is the plan's `magnitude` (validated per site).
  kSlowRank = 8,     ///< persistent compute slowdown factor (magnitude >= 1)
  kJitter = 9,       ///< transient per-step OS-noise stretch (sigma > 0)
  kDegradedLink = 10,  ///< halo-link bandwidth factor (magnitude in (0, 1])
};
inline constexpr int kNumFaultSites = 11;

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// When and how often one site fires. `probability` and `fire_every` are
/// alternatives; if both are set the site fires when either rule does.
struct FaultPlan {
  double probability = 0;  ///< chance per draw (seeded, deterministic)
  int fire_every = 0;      ///< fire on draws skip_first, skip_first+k, ...
  int skip_first = 0;      ///< draws to let pass before the first fire
  int max_fires = std::numeric_limits<int>::max();
  double magnitude = 2.0;  ///< site-specific severity (e.g. rank slowdown)
};

/// Which data structure a FaultSite::kBitFlip opportunity may corrupt.
/// The instrumented sites each announce their own target; an opportunity
/// whose target does not match the armed spec passes without consuming a
/// draw, so fire_every counts opportunities *of the selected target* and
/// campaigns are comparable across targets.
enum class FlipTarget : int {
  kAny = 0,       ///< every instrumented bit-flip site is an opportunity
  kState = 1,     ///< committed state vector at a pseudo-timestep boundary
  kResidual = 2,  ///< residual evaluation output
  kKrylov = 3,    ///< Krylov vector inside GMRES/BiCGStab
  kMatrix = 4,    ///< assembled Jacobian (Bcsr) values
  kHalo = 5,      ///< halo payload after the comm-layer CRC passed
};
[[nodiscard]] const char* flip_target_name(FlipTarget target);

/// How FaultSite::kBitFlip corrupts a value: which IEEE-754 bit to XOR
/// (0 = mantissa lsb, 51 = mantissa msb, 52-62 = exponent, 63 = sign) and
/// which target the armed plan aims at. Configuration, like FaultPlan —
/// a restored injector is re-armed by the campaign driver.
struct BitFlipSpec {
  int bit = 62;  ///< exponent msb: a loud-magnitude but *finite-capable* flip
  FlipTarget target = FlipTarget::kAny;
};

class FaultInjector {
public:
  explicit FaultInjector(std::uint64_t seed = 0);

  /// Arm one site; un-armed sites never fire. Throws f3d::Error on an
  /// invalid plan (probability outside [0, 1], negative fire_every /
  /// skip_first / max_fires) instead of silently misbehaving. The
  /// fail-slow sites additionally validate `magnitude`: a kSlowRank
  /// slowdown factor must be >= 1 (a "negative slowdown" is not a
  /// straggler), a kJitter sigma must be > 0, and a kDegradedLink
  /// bandwidth factor must lie in (0, 1].
  void arm(FaultSite site, const FaultPlan& plan);

  /// Configure what a FaultSite::kBitFlip fire does (bit position +
  /// target routing). Throws f3d::Error on a bit outside [0, 63].
  void set_bit_flip(const BitFlipSpec& spec);
  [[nodiscard]] const BitFlipSpec& bit_flip() const { return bitflip_; }

  /// One injection opportunity at `site`; advances the site's draw count
  /// and PRNG regardless of the outcome (keeps streams site-independent).
  bool should_fire(FaultSite site);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] int draws(FaultSite site) const;
  [[nodiscard]] int fires(FaultSite site) const;
  [[nodiscard]] int total_fires() const;
  [[nodiscard]] double magnitude(FaultSite site) const;

  /// Deterministic per-fire tag: a pure function of (seed, site, fires)
  /// that consumes no PRNG draws. Bit-flip sites use it to pick which
  /// element of a vector to corrupt, so replaying a checkpointed stream
  /// reproduces the exact same flip without perturbing any site's stream.
  [[nodiscard]] std::uint64_t fire_tag(FaultSite site) const;

  /// Serializable position in every site's deterministic draw stream.
  /// Plans are configuration, not state: a restored injector must be
  /// re-armed with the same plans (the campaign driver owns those). The
  /// one exception is the per-site `magnitude` (e.g. the kRank slowdown
  /// factor), which is carried in the state so a kill/resume with
  /// parallel faults armed replays bit-identically even if the resuming
  /// driver armed a different severity.
  struct State {
    std::uint64_t seed = 0;
    std::array<int, kNumFaultSites> draws{};
    std::array<int, kNumFaultSites> fires{};
    std::array<double, kNumFaultSites> magnitudes{};
  };
  [[nodiscard]] State state() const;
  /// Rebuild the PRNG streams and fast-forward them to `s`; re-applies
  /// the serialized per-site magnitudes onto the armed plans.
  void restore(const State& s);

private:
  struct SiteState {
    FaultPlan plan;
    Rng rng;
    int draws = 0;
    int fires = 0;
  };
  void reseed_site(int i);

  std::uint64_t seed_ = 0;
  std::array<SiteState, kNumFaultSites> sites_;
  BitFlipSpec bitflip_;
};

/// Process-wide registry the injection sites consult. Null (the default)
/// means every site is a no-op; cost of a disabled site is one branch.
[[nodiscard]] FaultInjector* active_injector();
/// Returns the previously active injector.
FaultInjector* set_active_injector(FaultInjector* injector);

/// RAII activation: installs `injector` (if non-null) for the scope's
/// lifetime and restores the previous registration on exit.
class InjectorScope {
public:
  explicit InjectorScope(FaultInjector* injector)
      : installed_(injector != nullptr),
        previous_(installed_ ? set_active_injector(injector) : nullptr) {}
  ~InjectorScope() {
    if (installed_) set_active_injector(previous_);
  }
  InjectorScope(const InjectorScope&) = delete;
  InjectorScope& operator=(const InjectorScope&) = delete;

private:
  bool installed_;
  FaultInjector* previous_;
};

/// One injection opportunity against the registered injector (no-op when
/// none is registered).
inline bool fault_fires(FaultSite site) {
  FaultInjector* inj = active_injector();
  return inj != nullptr && inj->should_fire(site);
}

}  // namespace f3d::resilience
