#pragma once
// Deterministic fault injection for the solver stack. A FaultInjector is
// armed with a per-site plan (probability draws from a seeded PRNG, or a
// deterministic fire-every-k schedule) and registered process-wide; the
// instrumented sites in the residual evaluation, the Schwarz/ILU
// factorization, the Krylov inner loops, and the parallel step model then
// ask `fault_fires(site)` at each opportunity. Every draw is counted, so
// the injector state can be checkpointed and restored bit-identically
// (see checkpoint.hpp) and every campaign run is reproducible from its
// seed alone.

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "common/rng.hpp"

namespace f3d::resilience {

/// Instrumented locations in the solver stack. GMRES and BiCGStab are
/// separate sites on purpose: a persistent fault in one Krylov method is
/// then recoverable by swapping to the other — exactly the asymmetry the
/// driver's recovery ladder exploits.
enum class FaultSite : int {
  kResidual = 0,     ///< NaN/Inf corruption of a residual evaluation
  kFactorPivot = 1,  ///< zeroed diagonal block before ILU/SSOR factorization
  kGmres = 2,        ///< wiped Arnoldi direction (forced GMRES stagnation)
  kBicgstab = 3,     ///< forced BiCGStab rho/omega breakdown
  kRank = 4,         ///< simulated slow/failed rank in par::stepmodel
  kRankFail = 5,     ///< fail-stop rank loss in the distributed campaign
  kMessage = 6,      ///< corrupted halo-exchange / reduction message
};
inline constexpr int kNumFaultSites = 7;

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// When and how often one site fires. `probability` and `fire_every` are
/// alternatives; if both are set the site fires when either rule does.
struct FaultPlan {
  double probability = 0;  ///< chance per draw (seeded, deterministic)
  int fire_every = 0;      ///< fire on draws skip_first, skip_first+k, ...
  int skip_first = 0;      ///< draws to let pass before the first fire
  int max_fires = std::numeric_limits<int>::max();
  double magnitude = 2.0;  ///< site-specific severity (e.g. rank slowdown)
};

class FaultInjector {
public:
  explicit FaultInjector(std::uint64_t seed = 0);

  /// Arm one site; un-armed sites never fire.
  void arm(FaultSite site, const FaultPlan& plan);

  /// One injection opportunity at `site`; advances the site's draw count
  /// and PRNG regardless of the outcome (keeps streams site-independent).
  bool should_fire(FaultSite site);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] int draws(FaultSite site) const;
  [[nodiscard]] int fires(FaultSite site) const;
  [[nodiscard]] int total_fires() const;
  [[nodiscard]] double magnitude(FaultSite site) const;

  /// Serializable position in every site's deterministic draw stream.
  /// Plans are configuration, not state: a restored injector must be
  /// re-armed with the same plans (the campaign driver owns those). The
  /// one exception is the per-site `magnitude` (e.g. the kRank slowdown
  /// factor), which is carried in the state so a kill/resume with
  /// parallel faults armed replays bit-identically even if the resuming
  /// driver armed a different severity.
  struct State {
    std::uint64_t seed = 0;
    std::array<int, kNumFaultSites> draws{};
    std::array<int, kNumFaultSites> fires{};
    std::array<double, kNumFaultSites> magnitudes{};
  };
  [[nodiscard]] State state() const;
  /// Rebuild the PRNG streams and fast-forward them to `s`; re-applies
  /// the serialized per-site magnitudes onto the armed plans.
  void restore(const State& s);

private:
  struct SiteState {
    FaultPlan plan;
    Rng rng;
    int draws = 0;
    int fires = 0;
  };
  void reseed_site(int i);

  std::uint64_t seed_ = 0;
  std::array<SiteState, kNumFaultSites> sites_;
};

/// Process-wide registry the injection sites consult. Null (the default)
/// means every site is a no-op; cost of a disabled site is one branch.
[[nodiscard]] FaultInjector* active_injector();
/// Returns the previously active injector.
FaultInjector* set_active_injector(FaultInjector* injector);

/// RAII activation: installs `injector` (if non-null) for the scope's
/// lifetime and restores the previous registration on exit.
class InjectorScope {
public:
  explicit InjectorScope(FaultInjector* injector)
      : installed_(injector != nullptr),
        previous_(installed_ ? set_active_injector(injector) : nullptr) {}
  ~InjectorScope() {
    if (installed_) set_active_injector(previous_);
  }
  InjectorScope(const InjectorScope&) = delete;
  InjectorScope& operator=(const InjectorScope&) = delete;

private:
  bool installed_;
  FaultInjector* previous_;
};

/// One injection opportunity against the registered injector (no-op when
/// none is registered).
inline bool fault_fires(FaultSite site) {
  FaultInjector* inj = active_injector();
  return inj != nullptr && inj->should_fire(site);
}

}  // namespace f3d::resilience
