#pragma once
// Checkpoint/restart for the psi-NKS driver: everything the PTC outer
// loop needs to resume a killed run bit-identically — the state vector
// (raw IEEE-754 bytes, no text round-trip), the continuation state (step
// index, residual norms, CFL relaxation), the escalation state of the
// recovery ladder, the fault injector's stream position (including the
// per-rank fail-stop process of the distributed campaign), and the
// recovery log so far. Writes are atomic (temp file + rename) so a kill
// during a checkpoint leaves the previous one intact.
//
// Format (version 3): an 8-byte magic, a little-endian format version, a
// CRC32 over the payload, and the payload length — so a truncated or
// bit-flipped checkpoint is rejected with nullopt instead of being
// deserialized into garbage. encode/decode expose the same format as an
// in-memory byte string for the diskless buddy checkpointing of
// resilience/buddy.hpp.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"

namespace f3d::resilience {

struct PtcCheckpoint {
  // Outer-loop position.
  std::int64_t step = 0;        ///< next pseudo-timestep to execute
  std::int64_t steps_done = 0;  ///< accepted steps so far
  std::vector<double> x;        ///< state vector, bit-exact

  // Continuation state (SER law inputs).
  double rnorm = 0;      ///< steady residual norm at the checkpoint
  double r0 = 0;         ///< initial residual norm of the original run
  double cfl_relax = 1;  ///< recovery ladder's CFL backtrack multiplier

  // Result counters carried across the restart.
  std::int64_t function_evaluations = 0;
  std::int64_t total_linear_iterations = 0;

  // Recovery-ladder escalation state.
  std::int32_t gmres_restart = 0;  ///< escalated restart length (0 = unset)
  std::int32_t krylov = 0;         ///< active Krylov method (PtcOptions::Krylov)

  // Fault injector stream position (reproducible campaigns). The state
  // carries every site's draw/fire counts and armed magnitude — including
  // the kRank straggler severity and the kRankFail per-rank process — so
  // kill/resume with parallel faults armed stays bit-identical.
  bool has_injector = false;
  FaultInjector::State injector;

  // Distributed campaign state (par::simulate_campaign); empty/default
  // when the virtual parallel machine is not in use.
  std::vector<std::uint8_t> rank_alive;  ///< per-rank alive flags
  std::int32_t spares_used = 0;          ///< spare-pool consumption so far
  std::int64_t last_buddy_checkpoint_step = -1;

  RecoveryLog log;
};

/// Current on-disk/in-memory format version (see header comment).
inline constexpr std::uint32_t kCheckpointFormatVersion = 3;

/// Serialize to a self-validating byte string (magic + version + CRC32 +
/// payload) — the exact bytes save_checkpoint writes to disk.
std::string encode_checkpoint(const PtcCheckpoint& ck);

/// Inverse of encode_checkpoint. Returns nullopt if the bytes are not a
/// checkpoint, are a different format version, are truncated, or fail the
/// CRC — corruption is always rejected, never deserialized.
std::optional<PtcCheckpoint> decode_checkpoint(const std::string& bytes);

/// Serialize to `path` failure-atomically: write `path + ".tmp"`, flush
/// and check every byte, rotate any existing primary to `path + ".prev"`,
/// then atomically rename the temp into place. A crash or full disk at
/// any point leaves either the new checkpoint, the old one, or both the
/// old one and a rejected partial — never a silently-corrupt primary
/// with no fallback. Returns false on any I/O failure.
bool save_checkpoint(const std::string& path, const PtcCheckpoint& ck);

/// Returns nullopt if the file is missing, truncated, corrupt (CRC
/// mismatch), or not a checkpoint of the current format version.
std::optional<PtcCheckpoint> load_checkpoint(const std::string& path);

/// load_checkpoint on the primary, falling back to the previous verified
/// generation (`path + ".prev"`, kept by save_checkpoint) when the
/// primary is missing or fails validation — e.g. a torn write discovered
/// at restore time. `loaded_from`, if given, receives the path actually
/// restored. Counts obs `resilience.checkpoint_fallbacks` on fallback.
std::optional<PtcCheckpoint> load_checkpoint_with_fallback(
    const std::string& path, std::string* loaded_from = nullptr);

}  // namespace f3d::resilience
