#pragma once
// Checkpoint/restart for the psi-NKS driver: everything the PTC outer
// loop needs to resume a killed run bit-identically — the state vector
// (raw IEEE-754 bytes, no text round-trip), the continuation state (step
// index, residual norms, CFL relaxation), the escalation state of the
// recovery ladder, the fault injector's stream position, and the recovery
// log so far. Writes are atomic (temp file + rename) so a kill during a
// checkpoint leaves the previous one intact.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "resilience/faults.hpp"
#include "resilience/recovery.hpp"

namespace f3d::resilience {

struct PtcCheckpoint {
  // Outer-loop position.
  std::int64_t step = 0;        ///< next pseudo-timestep to execute
  std::int64_t steps_done = 0;  ///< accepted steps so far
  std::vector<double> x;        ///< state vector, bit-exact

  // Continuation state (SER law inputs).
  double rnorm = 0;      ///< steady residual norm at the checkpoint
  double r0 = 0;         ///< initial residual norm of the original run
  double cfl_relax = 1;  ///< recovery ladder's CFL backtrack multiplier

  // Result counters carried across the restart.
  std::int64_t function_evaluations = 0;
  std::int64_t total_linear_iterations = 0;

  // Recovery-ladder escalation state.
  std::int32_t gmres_restart = 0;  ///< escalated restart length (0 = unset)
  std::int32_t krylov = 0;         ///< active Krylov method (PtcOptions::Krylov)

  // Fault injector stream position (reproducible campaigns).
  bool has_injector = false;
  FaultInjector::State injector;

  RecoveryLog log;
};

/// Serialize to `path` atomically; returns false on any I/O failure.
bool save_checkpoint(const std::string& path, const PtcCheckpoint& ck);

/// Returns nullopt if the file is missing, truncated, or not a checkpoint.
std::optional<PtcCheckpoint> load_checkpoint(const std::string& path);

}  // namespace f3d::resilience
