#pragma once
// Silent-data-corruption injection: deterministic single-bit flips in
// IEEE-754 doubles. Unlike the loud FaultSite classes (NaN residuals,
// zeroed pivots, fail-stop ranks), a flipped mantissa or exponent bit
// produces a *finite* wrong value that no NaN/Inf guard can see — the
// failure class the ABFT layer (sparse/abft.hpp), the Krylov invariant
// monitors, and the physical-admissibility scan exist to catch.
//
// The element to corrupt is derived from the injector's fire count
// (FaultInjector::fire_tag), never from extra PRNG draws, so a
// checkpointed stream replays the exact same flip and arming kBitFlip
// cannot perturb any other site's draw sequence.

#include <cstdint>

#include "resilience/faults.hpp"

namespace f3d::resilience {

/// XOR bit `bit` (0 = mantissa lsb ... 52-62 = exponent, 63 = sign) of
/// v's IEEE-754 representation. Throws f3d::Error on a bit outside
/// [0, 63]. The result may be any double, including Inf/NaN when the
/// flip lands the exponent field on all-ones.
[[nodiscard]] double flip_bit(double v, int bit);

/// Float variant: XOR bit `bit` (0 = mantissa lsb ... 23-30 = exponent,
/// 31 = sign). Throws f3d::Error on a bit outside [0, 31]. Targets the
/// float-storage arrays of mixed-precision mode (Bcsr<float> operator,
/// float ILU factors).
[[nodiscard]] float flip_bit(float v, int bit);

/// One FaultSite::kBitFlip opportunity announced by an instrumented site
/// whose data is `target`. Returns false (without consuming a draw) when
/// no injector is registered or the armed BitFlipSpec aims at a
/// different target; otherwise advances the kBitFlip stream exactly like
/// any other site.
[[nodiscard]] bool bitflip_fires(FlipTarget target);

/// One injection opportunity against `data[0..n)`: if the kBitFlip site
/// fires for this target, flips the armed spec's bit in one
/// deterministically chosen element and returns its index; returns -1
/// when nothing fired (or n <= 0). The victim is the first LIVE value at
/// or after the tagged index (wrapping): |v| >= eps * ||data||_inf —
/// flips strike data that participates in the computation, not stored
/// zeros (Bcsr block padding) or cancellation residue already below the
/// array's own roundoff, whose corruption is indistinguishable from
/// rounding noise for any invariant-based detector. Counts fired flips
/// into the obs registry as "resilience.bitflip_injected".
long long maybe_flip(FlipTarget target, double* data, long long n);

/// Float-storage variant of the same site (used when the injected array
/// holds floats, e.g. the Bcsr<float> Krylov operator of
/// matrix_single_precision mode). The armed bit must be in [0, 31]; the
/// live threshold uses float epsilon.
long long maybe_flip(FlipTarget target, float* data, long long n);

}  // namespace f3d::resilience
