#include "resilience/faults.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace f3d::resilience {

namespace {

FaultInjector* g_active = nullptr;

int site_index(FaultSite site) {
  const int i = static_cast<int>(site);
  F3D_CHECK(i >= 0 && i < kNumFaultSites);
  return i;
}

// Distinct, seed-derived stream per site (SplitMix64-style mix) so arming
// or querying one site never perturbs another's draw sequence.
std::uint64_t site_seed(std::uint64_t seed, int i) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kResidual: return "residual-nan";
    case FaultSite::kFactorPivot: return "factor-pivot";
    case FaultSite::kGmres: return "gmres-stagnation";
    case FaultSite::kBicgstab: return "bicgstab-breakdown";
    case FaultSite::kRank: return "rank-straggler";
    case FaultSite::kRankFail: return "rank-failstop";
    case FaultSite::kMessage: return "message-corrupt";
    case FaultSite::kBitFlip: return "bit-flip";
    case FaultSite::kSlowRank: return "slow-rank";
    case FaultSite::kJitter: return "jitter";
    case FaultSite::kDegradedLink: return "degraded-link";
  }
  return "unknown";
}

const char* flip_target_name(FlipTarget target) {
  switch (target) {
    case FlipTarget::kAny: return "any";
    case FlipTarget::kState: return "state";
    case FlipTarget::kResidual: return "residual";
    case FlipTarget::kKrylov: return "krylov";
    case FlipTarget::kMatrix: return "matrix";
    case FlipTarget::kHalo: return "halo";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {
  for (int i = 0; i < kNumFaultSites; ++i) reseed_site(i);
}

void FaultInjector::reseed_site(int i) {
  sites_[static_cast<std::size_t>(i)].rng = Rng(site_seed(seed_, i));
}

void FaultInjector::arm(FaultSite site, const FaultPlan& plan) {
  F3D_CHECK_MSG(plan.probability >= 0.0 && plan.probability <= 1.0,
                "FaultPlan.probability must be in [0, 1]");
  F3D_CHECK_MSG(plan.fire_every >= 0,
                "FaultPlan.fire_every must be non-negative");
  F3D_CHECK_MSG(plan.skip_first >= 0,
                "FaultPlan.skip_first must be non-negative");
  F3D_CHECK_MSG(plan.max_fires >= 0,
                "FaultPlan.max_fires must be non-negative");
  // The fail-slow sites carry their severity in `magnitude`; reject the
  // physically meaningless configurations up front so a campaign cannot
  // silently model a rank that runs backwards or a link wider than new.
  switch (site) {
    case FaultSite::kSlowRank:
      F3D_CHECK_MSG(plan.magnitude >= 1.0,
                    "FaultPlan.magnitude for kSlowRank is a slowdown factor "
                    "and must be >= 1 (a negative or sub-unit slowdown is "
                    "not a straggler)");
      break;
    case FaultSite::kJitter:
      F3D_CHECK_MSG(plan.magnitude > 0.0,
                    "FaultPlan.magnitude for kJitter is the OS-noise sigma "
                    "and must be > 0");
      break;
    case FaultSite::kDegradedLink:
      F3D_CHECK_MSG(plan.magnitude > 0.0 && plan.magnitude <= 1.0,
                    "FaultPlan.magnitude for kDegradedLink is a bandwidth "
                    "factor and must lie in (0, 1]");
      break;
    default:
      break;
  }
  sites_[static_cast<std::size_t>(site_index(site))].plan = plan;
}

void FaultInjector::set_bit_flip(const BitFlipSpec& spec) {
  F3D_CHECK_MSG(spec.bit >= 0 && spec.bit <= 63,
                "BitFlipSpec.bit must be in [0, 63]");
  bitflip_ = spec;
}

bool FaultInjector::should_fire(FaultSite site) {
  SiteState& s = sites_[static_cast<std::size_t>(site_index(site))];
  const int draw = s.draws++;
  // Always consume exactly one uniform so the stream position equals the
  // draw count — that is what makes checkpoint restore exact.
  const double u = s.rng.uniform();
  if (s.fires >= s.plan.max_fires) return false;
  bool fire = s.plan.probability > 0 && u < s.plan.probability;
  if (!fire && s.plan.fire_every > 0) {
    const int past = draw - s.plan.skip_first;
    fire = past >= 0 && past % s.plan.fire_every == 0;
  }
  if (fire) {
    ++s.fires;
    obs::Registry::global().count("resilience.fault_fires");
  }
  return fire;
}

int FaultInjector::draws(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site_index(site))].draws;
}

int FaultInjector::fires(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site_index(site))].fires;
}

int FaultInjector::total_fires() const {
  int total = 0;
  for (const auto& s : sites_) total += s.fires;
  return total;
}

double FaultInjector::magnitude(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site_index(site))].plan.magnitude;
}

std::uint64_t FaultInjector::fire_tag(FaultSite site) const {
  const int i = site_index(site);
  const auto fires =
      static_cast<std::uint64_t>(sites_[static_cast<std::size_t>(i)].fires);
  // Same SplitMix64-style mix as site_seed, keyed by the fire count so
  // consecutive fires of one site land on different tags.
  return site_seed(seed_ ^ (fires * 0xd1342543de82ef95ULL), i);
}

FaultInjector::State FaultInjector::state() const {
  State st;
  st.seed = seed_;
  for (int i = 0; i < kNumFaultSites; ++i) {
    st.draws[static_cast<std::size_t>(i)] = sites_[static_cast<std::size_t>(i)].draws;
    st.fires[static_cast<std::size_t>(i)] = sites_[static_cast<std::size_t>(i)].fires;
    st.magnitudes[static_cast<std::size_t>(i)] =
        sites_[static_cast<std::size_t>(i)].plan.magnitude;
  }
  return st;
}

void FaultInjector::restore(const State& st) {
  seed_ = st.seed;
  for (int i = 0; i < kNumFaultSites; ++i) {
    SiteState& s = sites_[static_cast<std::size_t>(i)];
    reseed_site(i);
    s.draws = st.draws[static_cast<std::size_t>(i)];
    s.fires = st.fires[static_cast<std::size_t>(i)];
    s.plan.magnitude = st.magnitudes[static_cast<std::size_t>(i)];
    // One uniform per historical draw (see should_fire).
    for (int d = 0; d < s.draws; ++d) s.rng.uniform();
  }
}

FaultInjector* active_injector() { return g_active; }

FaultInjector* set_active_injector(FaultInjector* injector) {
  FaultInjector* prev = g_active;
  g_active = injector;
  return prev;
}

}  // namespace f3d::resilience
