#pragma once
// Buddy (diskless neighbor) checkpointing: every rank keeps its
// checkpoint payload in its own memory and mirrors it to the next alive
// rank on a ring, so a fail-stop rank loss is survivable without any
// disk I/O — the survivor hands the dead rank's last state back to its
// replacement (spare-rank policy) or to the ranks absorbing its
// subdomain (shrink-and-repartition). Every stored copy is framed with a
// CRC32 so a corrupted copy is detected and skipped rather than
// restored. Only the simultaneous loss of a rank and its buddy (before a
// re-mirror) loses state — the classic double-failure window of diskless
// checkpointing, which simulate_campaign reports as an unrecoverable
// campaign.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace f3d::resilience {

class BuddyStore {
public:
  explicit BuddyStore(int ranks);

  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] bool alive(int rank) const;
  [[nodiscard]] int alive_count() const;

  /// Next alive rank after `rank` on the ring (the mirror target);
  /// -1 when no other rank is alive.
  [[nodiscard]] int buddy_of(int rank) const;

  /// Keep `payload` as `rank`'s checkpoint: one copy locally, one on the
  /// buddy. Replaces any previous copies. Returns false if `rank` is dead
  /// or no buddy exists (the local copy is still kept in that case).
  bool store(int rank, const std::string& payload);

  /// Fail-stop loss of `rank`: everything physically held on it — its own
  /// copy and any buddy copies it kept for others — is gone.
  void fail_rank(int rank);

  /// A replacement (spare) took over the logical rank: the slot is alive
  /// again but holds no data until the next store().
  void revive_rank(int rank);

  /// `rank`'s payload from any surviving, CRC-valid copy (local copy
  /// first, then the buddy copy). nullopt = state lost or corrupt.
  [[nodiscard]] std::optional<std::string> retrieve(int rank) const;

  /// Surviving copies of `rank`'s payload (0-2); CRC not checked.
  [[nodiscard]] int copies(int rank) const;

  /// Test hook: mutable framed bytes of the copy of `owner`'s payload held
  /// on `holder` (nullptr if absent). Lets tests flip a byte and assert
  /// the CRC rejects the copy.
  std::string* frame_for_test(int owner, int holder);

private:
  struct Copy {
    int holder = -1;      ///< rank whose memory physically holds the frame
    std::string frame;    ///< [u32 crc][payload]
  };
  static std::string make_frame(const std::string& payload);
  static std::optional<std::string> open_frame(const std::string& frame);

  int ranks_ = 0;
  std::vector<std::uint8_t> alive_;
  std::vector<std::vector<Copy>> copies_;  ///< indexed by owner rank
};

}  // namespace f3d::resilience
