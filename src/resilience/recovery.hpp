#pragma once
// Structured record of every failure detection and recovery action the
// resilient solver stack takes. The psi-NKS driver attaches a RecoveryLog
// to its PtcResult so tests and benches can assert on exactly what
// happened ("the zero pivot at step 7 was absorbed by a 1e-6 shift")
// instead of grepping stderr.

#include <string>
#include <vector>

namespace f3d::resilience {

enum class RecoveryAction : int {
  kDetectNanResidual = 0,  ///< non-finite residual evaluation observed
  kDetectDivergence,       ///< residual blew up past the divergence factor
  kDetectBreakdown,        ///< Krylov breakdown flagged by the inner solver
  kDetectStagnation,       ///< GMRES restart cycles made no progress
  kDetectSingularFactor,   ///< zero pivot / singular block in factorization
  kStepRejected,           ///< pseudo-timestep rolled back to its start state
  kCflBacktrack,           ///< CFL relaxation multiplier reduced
  kPrecRefresh,            ///< preconditioner rebuild forced out of schedule
  kPivotShift,             ///< Manteuffel-style diagonal shift absorbed a pivot
  kKrylovSwap,             ///< BiCGStab swapped for GMRES after breakdown
  kRestartEscalation,      ///< GMRES restart length escalated
  kCoarseDisabled,         ///< singular coarse operator dropped for this refresh
  kCheckpointWrite,        ///< PTC state serialized to disk
  kResume,                 ///< PTC state restored from a checkpoint
  // Distributed campaign events (par::simulate_campaign). Appended at the
  // end: the enum value is serialized as an integer in checkpoints.
  kDetectRankFail,         ///< fail-stop rank loss observed
  kSpareSubstitution,      ///< dead rank replaced from the spare pool
  kShrinkRepartition,      ///< dead rank's vertices reassigned to survivors
  kBuddyCheckpoint,        ///< diskless neighbor checkpoint written
  kBuddyRestore,           ///< state recovered from a buddy copy
  // Silent-data-corruption defense (ABFT + numerical health watchdog).
  // Appended at the end: the enum value is serialized in checkpoints.
  kDetectSdc,              ///< finite-value corruption flagged by a guard
  kSdcRecompute,           ///< recompute-and-verify rung (transient flips)
  kSdcRollback,            ///< state restored from the in-memory snapshot
  // Fail-slow tolerance (par::simulate_campaign's mitigation ladder).
  // Appended at the end: the enum value is serialized in checkpoints.
  kDetectSlowRank,         ///< outlier detector confirmed a degraded rank
  kWeightedRepartition,    ///< load shifted away from a slow-but-alive rank
  kQuarantineSlowRank,     ///< confirmed-slow rank migrated to a spare
  kCheckpointRetune,       ///< checkpoint interval adapted to the fault rate
  // Run-to-completion guard (f3d::guard; deadlines, cancellation,
  // degradation). Appended at the end: the value is serialized in
  // checkpoints.
  kGuardTrip,              ///< budget/cancel trip ended the solve
  kDetectStall,            ///< progress watchdog fired (livelock-style stall)
  kDegradeRung,            ///< degradation ladder traded accuracy for time
};

[[nodiscard]] const char* recovery_action_name(RecoveryAction action);

struct RecoveryEvent {
  int step = 0;  ///< pseudo-timestep index the event happened in
  RecoveryAction action = RecoveryAction::kStepRejected;
  std::string detail;
};

class RecoveryLog {
public:
  /// Appends the event and tallies it into the process-wide observability
  /// registry as "resilience.<action-name>" (defined in recovery.cpp).
  void add(int step, RecoveryAction action, std::string detail = {});

  [[nodiscard]] const std::vector<RecoveryEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  [[nodiscard]] int count(RecoveryAction action) const {
    int n = 0;
    for (const auto& e : events_)
      if (e.action == action) ++n;
    return n;
  }
  /// Detections only (the "what went wrong" half of the log).
  [[nodiscard]] int detections() const {
    return count(RecoveryAction::kDetectNanResidual) +
           count(RecoveryAction::kDetectDivergence) +
           count(RecoveryAction::kDetectBreakdown) +
           count(RecoveryAction::kDetectStagnation) +
           count(RecoveryAction::kDetectSingularFactor) +
           count(RecoveryAction::kDetectSdc);
  }

  /// One line per event: "step 7: pivot-shift (shift=1e-06)".
  [[nodiscard]] std::string to_string() const;

private:
  std::vector<RecoveryEvent> events_;
};

/// Outcome of a status-returning (non-throwing) factorization attempt,
/// including any diagonal-shift ladder the Schwarz layer climbed.
struct FactorReport {
  bool ok = true;
  int shift_attempts = 0;   ///< ladder rungs climbed across all subdomains
  double shift_used = 0;    ///< largest shift that made a factorization pass
  bool coarse_disabled = false;  ///< two-level only: coarse solve dropped
  std::string detail;
};

}  // namespace f3d::resilience
