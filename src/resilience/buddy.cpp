#include "resilience/buddy.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace f3d::resilience {

BuddyStore::BuddyStore(int ranks) : ranks_(ranks) {
  F3D_CHECK(ranks >= 1);
  alive_.assign(static_cast<std::size_t>(ranks), 1);
  copies_.resize(static_cast<std::size_t>(ranks));
}

bool BuddyStore::alive(int rank) const {
  F3D_CHECK(rank >= 0 && rank < ranks_);
  return alive_[static_cast<std::size_t>(rank)] != 0;
}

int BuddyStore::alive_count() const {
  int n = 0;
  for (auto a : alive_) n += a != 0 ? 1 : 0;
  return n;
}

int BuddyStore::buddy_of(int rank) const {
  F3D_CHECK(rank >= 0 && rank < ranks_);
  for (int step = 1; step < ranks_; ++step) {
    const int r = (rank + step) % ranks_;
    if (alive_[static_cast<std::size_t>(r)] != 0) return r;
  }
  return -1;
}

std::string BuddyStore::make_frame(const std::string& payload) {
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::string frame(sizeof(crc), '\0');
  std::memcpy(frame.data(), &crc, sizeof(crc));
  frame += payload;
  return frame;
}

std::optional<std::string> BuddyStore::open_frame(const std::string& frame) {
  std::uint32_t crc = 0;
  if (frame.size() < sizeof(crc)) return std::nullopt;
  std::memcpy(&crc, frame.data(), sizeof(crc));
  std::string payload = frame.substr(sizeof(crc));
  if (crc32(payload.data(), payload.size()) != crc) return std::nullopt;
  return payload;
}

bool BuddyStore::store(int rank, const std::string& payload) {
  F3D_CHECK(rank >= 0 && rank < ranks_);
  if (alive_[static_cast<std::size_t>(rank)] == 0) return false;
  auto& own = copies_[static_cast<std::size_t>(rank)];
  own.clear();
  own.push_back({rank, make_frame(payload)});
  const int buddy = buddy_of(rank);
  if (buddy < 0) return false;
  own.push_back({buddy, make_frame(payload)});
  return true;
}

void BuddyStore::fail_rank(int rank) {
  F3D_CHECK(rank >= 0 && rank < ranks_);
  alive_[static_cast<std::size_t>(rank)] = 0;
  for (auto& per_owner : copies_) {
    std::erase_if(per_owner, [rank](const Copy& c) { return c.holder == rank; });
  }
}

void BuddyStore::revive_rank(int rank) {
  F3D_CHECK(rank >= 0 && rank < ranks_);
  alive_[static_cast<std::size_t>(rank)] = 1;
}

std::optional<std::string> BuddyStore::retrieve(int rank) const {
  F3D_CHECK(rank >= 0 && rank < ranks_);
  // Prefer the local copy, then the buddy copy — both CRC-gated.
  const auto& per_owner = copies_[static_cast<std::size_t>(rank)];
  for (const auto& c : per_owner) {
    if (c.holder == rank && alive_[static_cast<std::size_t>(c.holder)] != 0)
      if (auto payload = open_frame(c.frame)) return payload;
  }
  for (const auto& c : per_owner) {
    if (c.holder != rank && alive_[static_cast<std::size_t>(c.holder)] != 0)
      if (auto payload = open_frame(c.frame)) return payload;
  }
  return std::nullopt;
}

int BuddyStore::copies(int rank) const {
  F3D_CHECK(rank >= 0 && rank < ranks_);
  int n = 0;
  for (const auto& c : copies_[static_cast<std::size_t>(rank)])
    if (alive_[static_cast<std::size_t>(c.holder)] != 0) ++n;
  return n;
}

std::string* BuddyStore::frame_for_test(int owner, int holder) {
  F3D_CHECK(owner >= 0 && owner < ranks_);
  for (auto& c : copies_[static_cast<std::size_t>(owner)])
    if (c.holder == holder) return &c.frame;
  return nullptr;
}

}  // namespace f3d::resilience
