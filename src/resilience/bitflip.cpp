#include "resilience/bitflip.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace f3d::resilience {

double flip_bit(double v, int bit) {
  F3D_CHECK_MSG(bit >= 0 && bit <= 63, "bit index must be in [0, 63]");
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  u ^= std::uint64_t{1} << bit;
  double out;
  std::memcpy(&out, &u, sizeof out);
  return out;
}

float flip_bit(float v, int bit) {
  F3D_CHECK_MSG(bit >= 0 && bit <= 31, "bit index must be in [0, 31]");
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof u);
  u ^= std::uint32_t{1} << bit;
  float out;
  std::memcpy(&out, &u, sizeof out);
  return out;
}

bool bitflip_fires(FlipTarget target) {
  FaultInjector* inj = active_injector();
  if (inj == nullptr) return false;
  const FlipTarget armed = inj->bit_flip().target;
  if (armed != FlipTarget::kAny && armed != target) return false;
  return inj->should_fire(FaultSite::kBitFlip);
}

namespace {

// Shared victim-selection + strike logic for both storage scalars. The
// live threshold scales with the storage type's own epsilon, so float
// arrays skip values that are roundoff at float accuracy.
template <class S>
long long maybe_flip_impl(FlipTarget target, S* data, long long n) {
  if (!bitflip_fires(target)) return -1;
  if (n <= 0 || data == nullptr) return -1;
  FaultInjector* inj = active_injector();
  const long long tagged = static_cast<long long>(
      inj->fire_tag(FaultSite::kBitFlip) % static_cast<std::uint64_t>(n));
  // Strike a LIVE value: one at or above the array's own rounding noise
  // (eps * ||data||_inf). Stored zeros (Bcsr block padding) and
  // cancellation residue are skipped — corrupting a value that is
  // already below the computation's roundoff is indistinguishable from
  // roundoff for ANY invariant-based detector and cannot alter the
  // answer; flips there say nothing about the defenses under test.
  // Deterministic: first live value at or after the tagged index
  // (wrapping), a pure function of the tag and the data.
  S amax = 0;
  for (long long i = 0; i < n; ++i) amax = std::max(amax, std::abs(data[i]));
  const S live = amax * std::numeric_limits<S>::epsilon();
  long long idx = tagged;
  long long probe = 0;
  for (; probe < n && std::abs(data[idx]) < live; ++probe) idx = (idx + 1) % n;
  if (probe == n) idx = tagged;  // nothing lives: strike the tagged slot
  data[idx] = flip_bit(data[idx], inj->bit_flip().bit);
  obs::Registry::global().count("resilience.bitflip_injected");
  return idx;
}

}  // namespace

long long maybe_flip(FlipTarget target, double* data, long long n) {
  return maybe_flip_impl(target, data, n);
}

long long maybe_flip(FlipTarget target, float* data, long long n) {
  return maybe_flip_impl(target, data, n);
}

}  // namespace f3d::resilience
