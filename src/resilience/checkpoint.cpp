#include "resilience/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace f3d::resilience {

namespace {

constexpr char kMagic[8] = {'F', '3', 'D', 'C', 'K', 'P', 'T', '2'};

void put_bytes(std::string& buf, const void* p, std::size_t n) {
  buf.append(static_cast<const char*>(p), n);
}
template <class T>
void put(std::string& buf, T v) {
  put_bytes(buf, &v, sizeof(T));
}
void put_string(std::string& buf, const std::string& s) {
  put<std::int64_t>(buf, static_cast<std::int64_t>(s.size()));
  put_bytes(buf, s.data(), s.size());
}

struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) return ok = false;
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
  template <class T>
  T get() {
    T v{};
    take(&v, sizeof(T));
    return v;
  }
  std::string get_string() {
    const auto n = get<std::int64_t>();
    if (!ok || n < 0 || static_cast<std::size_t>(end - p) < static_cast<std::size_t>(n))
      return ok = false, std::string{};
    std::string s(p, static_cast<std::size_t>(n));
    p += n;
    return s;
  }
};

}  // namespace

bool save_checkpoint(const std::string& path, const PtcCheckpoint& ck) {
  std::string buf;
  buf.reserve(64 + ck.x.size() * sizeof(double));
  put_bytes(buf, kMagic, sizeof(kMagic));
  put<std::int64_t>(buf, ck.step);
  put<std::int64_t>(buf, ck.steps_done);
  put<std::int64_t>(buf, static_cast<std::int64_t>(ck.x.size()));
  put_bytes(buf, ck.x.data(), ck.x.size() * sizeof(double));
  put(buf, ck.rnorm);
  put(buf, ck.r0);
  put(buf, ck.cfl_relax);
  put(buf, ck.function_evaluations);
  put(buf, ck.total_linear_iterations);
  put(buf, ck.gmres_restart);
  put(buf, ck.krylov);
  put<std::int8_t>(buf, ck.has_injector ? 1 : 0);
  if (ck.has_injector) {
    put(buf, ck.injector.seed);
    for (int i = 0; i < kNumFaultSites; ++i) {
      put(buf, ck.injector.draws[static_cast<std::size_t>(i)]);
      put(buf, ck.injector.fires[static_cast<std::size_t>(i)]);
    }
  }
  const auto& events = ck.log.events();
  put<std::int64_t>(buf, static_cast<std::int64_t>(events.size()));
  for (const auto& e : events) {
    put<std::int32_t>(buf, e.step);
    put<std::int32_t>(buf, static_cast<std::int32_t>(e.action));
    put_string(buf, e.detail);
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<PtcCheckpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  Reader rd{buf.data(), buf.data() + buf.size()};

  char magic[sizeof(kMagic)];
  if (!rd.take(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return std::nullopt;

  PtcCheckpoint ck;
  ck.step = rd.get<std::int64_t>();
  ck.steps_done = rd.get<std::int64_t>();
  const auto n = rd.get<std::int64_t>();
  if (!rd.ok || n < 0) return std::nullopt;
  ck.x.resize(static_cast<std::size_t>(n));
  rd.take(ck.x.data(), ck.x.size() * sizeof(double));
  ck.rnorm = rd.get<double>();
  ck.r0 = rd.get<double>();
  ck.cfl_relax = rd.get<double>();
  ck.function_evaluations = rd.get<std::int64_t>();
  ck.total_linear_iterations = rd.get<std::int64_t>();
  ck.gmres_restart = rd.get<std::int32_t>();
  ck.krylov = rd.get<std::int32_t>();
  ck.has_injector = rd.get<std::int8_t>() != 0;
  if (ck.has_injector) {
    ck.injector.seed = rd.get<std::uint64_t>();
    for (int i = 0; i < kNumFaultSites; ++i) {
      ck.injector.draws[static_cast<std::size_t>(i)] = rd.get<int>();
      ck.injector.fires[static_cast<std::size_t>(i)] = rd.get<int>();
    }
  }
  const auto nev = rd.get<std::int64_t>();
  if (!rd.ok || nev < 0) return std::nullopt;
  for (std::int64_t i = 0; i < nev; ++i) {
    const int step = rd.get<std::int32_t>();
    const auto action = static_cast<RecoveryAction>(rd.get<std::int32_t>());
    std::string detail = rd.get_string();
    if (!rd.ok) return std::nullopt;
    ck.log.add(step, action, std::move(detail));
  }
  if (!rd.ok) return std::nullopt;
  return ck;
}

}  // namespace f3d::resilience
