#include "resilience/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.hpp"
#include "obs/obs.hpp"

namespace f3d::resilience {

namespace {

// Magic is version-free; the version is a field so a mismatch is
// distinguishable from "not a checkpoint at all".
constexpr char kMagic[8] = {'F', '3', 'D', 'C', 'K', 'P', 'T', 'v'};

void put_bytes(std::string& buf, const void* p, std::size_t n) {
  if (n == 0) return;  // empty vectors hand over a null data()
  buf.append(static_cast<const char*>(p), n);
}
template <class T>
void put(std::string& buf, T v) {
  put_bytes(buf, &v, sizeof(T));
}
void put_string(std::string& buf, const std::string& s) {
  put<std::int64_t>(buf, static_cast<std::int64_t>(s.size()));
  put_bytes(buf, s.data(), s.size());
}

struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) return ok = false;
    if (n > 0) std::memcpy(out, p, n);  // out may be a null data() at n=0
    p += n;
    return true;
  }
  template <class T>
  T get() {
    T v{};
    take(&v, sizeof(T));
    return v;
  }
  std::string get_string() {
    const auto n = get<std::int64_t>();
    if (!ok || n < 0 || static_cast<std::size_t>(end - p) < static_cast<std::size_t>(n))
      return ok = false, std::string{};
    std::string s(p, static_cast<std::size_t>(n));
    p += n;
    return s;
  }
};

std::string encode_payload(const PtcCheckpoint& ck) {
  std::string buf;
  buf.reserve(128 + ck.x.size() * sizeof(double) + ck.rank_alive.size());
  put<std::int64_t>(buf, ck.step);
  put<std::int64_t>(buf, ck.steps_done);
  put<std::int64_t>(buf, static_cast<std::int64_t>(ck.x.size()));
  put_bytes(buf, ck.x.data(), ck.x.size() * sizeof(double));
  put(buf, ck.rnorm);
  put(buf, ck.r0);
  put(buf, ck.cfl_relax);
  put(buf, ck.function_evaluations);
  put(buf, ck.total_linear_iterations);
  put(buf, ck.gmres_restart);
  put(buf, ck.krylov);
  put<std::int8_t>(buf, ck.has_injector ? 1 : 0);
  if (ck.has_injector) {
    put(buf, ck.injector.seed);
    put<std::int32_t>(buf, kNumFaultSites);
    for (int i = 0; i < kNumFaultSites; ++i) {
      put(buf, ck.injector.draws[static_cast<std::size_t>(i)]);
      put(buf, ck.injector.fires[static_cast<std::size_t>(i)]);
      put(buf, ck.injector.magnitudes[static_cast<std::size_t>(i)]);
    }
  }
  put<std::int64_t>(buf, static_cast<std::int64_t>(ck.rank_alive.size()));
  put_bytes(buf, ck.rank_alive.data(), ck.rank_alive.size());
  put(buf, ck.spares_used);
  put(buf, ck.last_buddy_checkpoint_step);
  const auto& events = ck.log.events();
  put<std::int64_t>(buf, static_cast<std::int64_t>(events.size()));
  for (const auto& e : events) {
    put<std::int32_t>(buf, e.step);
    put<std::int32_t>(buf, static_cast<std::int32_t>(e.action));
    put_string(buf, e.detail);
  }
  return buf;
}

std::optional<PtcCheckpoint> decode_payload(Reader& rd) {
  PtcCheckpoint ck;
  ck.step = rd.get<std::int64_t>();
  ck.steps_done = rd.get<std::int64_t>();
  const auto n = rd.get<std::int64_t>();
  if (!rd.ok || n < 0) return std::nullopt;
  ck.x.resize(static_cast<std::size_t>(n));
  rd.take(ck.x.data(), ck.x.size() * sizeof(double));
  ck.rnorm = rd.get<double>();
  ck.r0 = rd.get<double>();
  ck.cfl_relax = rd.get<double>();
  ck.function_evaluations = rd.get<std::int64_t>();
  ck.total_linear_iterations = rd.get<std::int64_t>();
  ck.gmres_restart = rd.get<std::int32_t>();
  ck.krylov = rd.get<std::int32_t>();
  ck.has_injector = rd.get<std::int8_t>() != 0;
  if (ck.has_injector) {
    ck.injector.seed = rd.get<std::uint64_t>();
    // A checkpoint from a build with a different site set cannot replay
    // the same draw streams: reject rather than resume divergently.
    if (rd.get<std::int32_t>() != kNumFaultSites) return std::nullopt;
    for (int i = 0; i < kNumFaultSites; ++i) {
      ck.injector.draws[static_cast<std::size_t>(i)] = rd.get<int>();
      ck.injector.fires[static_cast<std::size_t>(i)] = rd.get<int>();
      ck.injector.magnitudes[static_cast<std::size_t>(i)] = rd.get<double>();
    }
  }
  const auto nranks = rd.get<std::int64_t>();
  if (!rd.ok || nranks < 0) return std::nullopt;
  ck.rank_alive.resize(static_cast<std::size_t>(nranks));
  rd.take(ck.rank_alive.data(), ck.rank_alive.size());
  ck.spares_used = rd.get<std::int32_t>();
  ck.last_buddy_checkpoint_step = rd.get<std::int64_t>();
  const auto nev = rd.get<std::int64_t>();
  if (!rd.ok || nev < 0) return std::nullopt;
  for (std::int64_t i = 0; i < nev; ++i) {
    const int step = rd.get<std::int32_t>();
    const auto action = static_cast<RecoveryAction>(rd.get<std::int32_t>());
    std::string detail = rd.get_string();
    if (!rd.ok) return std::nullopt;
    ck.log.add(step, action, std::move(detail));
  }
  if (!rd.ok) return std::nullopt;
  return ck;
}

}  // namespace

std::string encode_checkpoint(const PtcCheckpoint& ck) {
  const std::string payload = encode_payload(ck);
  std::string buf;
  buf.reserve(sizeof(kMagic) + 16 + payload.size());
  put_bytes(buf, kMagic, sizeof(kMagic));
  put<std::uint32_t>(buf, kCheckpointFormatVersion);
  put<std::uint32_t>(buf, crc32(payload.data(), payload.size()));
  put<std::int64_t>(buf, static_cast<std::int64_t>(payload.size()));
  buf += payload;
  return buf;
}

std::optional<PtcCheckpoint> decode_checkpoint(const std::string& bytes) {
  Reader rd{bytes.data(), bytes.data() + bytes.size()};
  char magic[sizeof(kMagic)];
  if (!rd.take(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return std::nullopt;
  if (rd.get<std::uint32_t>() != kCheckpointFormatVersion) return std::nullopt;
  const std::uint32_t crc = rd.get<std::uint32_t>();
  const auto payload_size = rd.get<std::int64_t>();
  if (!rd.ok || payload_size < 0 ||
      static_cast<std::size_t>(rd.end - rd.p) !=
          static_cast<std::size_t>(payload_size))
    return std::nullopt;
  if (crc32(rd.p, static_cast<std::size_t>(payload_size)) != crc)
    return std::nullopt;
  return decode_payload(rd);
}

bool save_checkpoint(const std::string& path, const PtcCheckpoint& ck) {
  const std::string buf = encode_checkpoint(ck);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    // Flush inside the check, not in the destructor: a full disk or I/O
    // error on close must fail the save, never leave a short tmp behind
    // to be renamed over a good checkpoint.
    out.flush();
    if (!out) return false;
  }
  // Keep the previous verified checkpoint as <path>.prev before the new
  // one takes its place: if the new file is later torn or bit-rotted on
  // disk (the CRC rejects it at load), restore falls back one generation
  // instead of losing the run. Failure to rotate is not fatal — the first
  // save has no predecessor.
  std::rename(path.c_str(), (path + ".prev").c_str());
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<PtcCheckpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return decode_checkpoint(buf);
}

std::optional<PtcCheckpoint> load_checkpoint_with_fallback(
    const std::string& path, std::string* loaded_from) {
  if (auto ck = load_checkpoint(path)) {
    if (loaded_from != nullptr) *loaded_from = path;
    return ck;
  }
  // Primary missing, truncated, or corrupt (the CRC frame rejects torn
  // writes): fall back to the previous verified generation.
  const std::string prev = path + ".prev";
  if (auto ck = load_checkpoint(prev)) {
    obs::Registry::global().count("resilience.checkpoint_fallbacks");
    if (loaded_from != nullptr) *loaded_from = prev;
    return ck;
  }
  return std::nullopt;
}

}  // namespace f3d::resilience
