#include "resilience/recovery.hpp"

#include "obs/obs.hpp"

namespace f3d::resilience {

void RecoveryLog::add(int step, RecoveryAction action, std::string detail) {
  events_.push_back({step, action, std::move(detail)});
  obs::Registry::global().count(std::string("resilience.") +
                                recovery_action_name(action));
}

const char* recovery_action_name(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kDetectNanResidual: return "detect-nan-residual";
    case RecoveryAction::kDetectDivergence: return "detect-divergence";
    case RecoveryAction::kDetectBreakdown: return "detect-breakdown";
    case RecoveryAction::kDetectStagnation: return "detect-stagnation";
    case RecoveryAction::kDetectSingularFactor: return "detect-singular-factor";
    case RecoveryAction::kStepRejected: return "step-rejected";
    case RecoveryAction::kCflBacktrack: return "cfl-backtrack";
    case RecoveryAction::kPrecRefresh: return "prec-refresh";
    case RecoveryAction::kPivotShift: return "pivot-shift";
    case RecoveryAction::kKrylovSwap: return "krylov-swap";
    case RecoveryAction::kRestartEscalation: return "restart-escalation";
    case RecoveryAction::kCoarseDisabled: return "coarse-disabled";
    case RecoveryAction::kCheckpointWrite: return "checkpoint-write";
    case RecoveryAction::kResume: return "resume";
    case RecoveryAction::kDetectRankFail: return "detect-rank-fail";
    case RecoveryAction::kSpareSubstitution: return "spare-substitution";
    case RecoveryAction::kShrinkRepartition: return "shrink-repartition";
    case RecoveryAction::kBuddyCheckpoint: return "buddy-checkpoint";
    case RecoveryAction::kBuddyRestore: return "buddy-restore";
    case RecoveryAction::kDetectSdc: return "sdc-detected";
    case RecoveryAction::kSdcRecompute: return "sdc-recompute";
    case RecoveryAction::kSdcRollback: return "sdc-rollback";
    case RecoveryAction::kDetectSlowRank: return "detect-slow-rank";
    case RecoveryAction::kWeightedRepartition: return "weighted-repartition";
    case RecoveryAction::kQuarantineSlowRank: return "quarantine-slow-rank";
    case RecoveryAction::kCheckpointRetune: return "checkpoint-retune";
    case RecoveryAction::kGuardTrip: return "guard-trip";
    case RecoveryAction::kDetectStall: return "detect-stall";
    case RecoveryAction::kDegradeRung: return "degrade-rung";
  }
  return "unknown";
}

std::string RecoveryLog::to_string() const {
  std::string out;
  for (const auto& e : events_) {
    out += "step " + std::to_string(e.step) + ": " +
           recovery_action_name(e.action);
    if (!e.detail.empty()) out += " (" + e.detail + ")";
    out += "\n";
  }
  return out;
}

}  // namespace f3d::resilience
