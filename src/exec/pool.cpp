#include "exec/pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "guard/guard.hpp"
#include "obs/obs.hpp"

namespace f3d::exec {

namespace {
// Set while a thread executes a parallel_for chunk; a nested parallel_for
// from such a thread runs its whole range inline instead of deadlocking
// on the (single) job slot.
thread_local bool tl_in_parallel = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) { spawn(std::max(1, num_threads)); }

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::spawn(int num_threads) {
  nt_ = std::max(1, num_threads);
  // Fresh workers start with seen == 0; reset the generation counter or
  // they would wake instantly on a stale value and run a phantom job.
  generation_ = 0;
  pending_ = 0;
  body_ = nullptr;
  job_guard_ = nullptr;
  error_ = nullptr;
  workers_.reserve(nt_ - 1);
  for (int id = 1; id < nt_; ++id)
    workers_.emplace_back([this, id] { worker_loop(id); });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  stop_ = false;
}

void ThreadPool::resize(int num_threads) {
  num_threads = std::max(1, num_threads);
  if (num_threads == nt_) return;
  shutdown();
  spawn(num_threads);
}

void ThreadPool::run_chunk(int id) {
  if (id >= participants_) return;
  const std::int64_t n = end_ - begin_;
  const std::int64_t lo = begin_ + n * id / participants_;
  const std::int64_t hi = begin_ + n * (id + 1) / participants_;
  tl_in_parallel = true;
  // Install the dispatching thread's guard on this worker so the chunk's
  // poll points see it (the active guard is thread-local; see
  // guard/guard.hpp). On the dispatching thread itself this is a no-op
  // swap of the same pointer.
  guard::GuardScope guard_scope(job_guard_);
  try {
    // Cooperative cancellation boundary: a tripped guard abandons the
    // chunk before it starts. The throw is captured below and rethrown on
    // the calling thread like any other chunk exception, so workers stay
    // alive and the pool stays reusable after a cancelled solve.
    guard::poll_cancellation();
    // Recorded into the executing thread's buffer, so a trace shows the
    // chunks of one parallel_for fanned out across worker rows.
    F3D_OBS_SPAN("exec.chunk");
    (*body_)(lo, hi);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  tl_in_parallel = false;
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lk.unlock();
    run_chunk(id);
    lk.lock();
    if (--pending_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t grain) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  std::int64_t p = nt_;
  if (grain > 0) p = std::min<std::int64_t>(p, (n + grain - 1) / grain);
  if (p <= 1 || tl_in_parallel || workers_.empty()) {
    // Single-thread and nested-inline paths must honor cancellation too,
    // or a 1-thread solve would have unbounded cancel latency.
    guard::poll_cancellation();
    body(begin, end);
    return;
  }
  F3D_OBS_SPAN("exec.parallel_for");
  obs::Registry::global().count("exec.parallel_for.dispatches");
  {
    std::lock_guard<std::mutex> lk(mu_);
    body_ = &body;
    begin_ = begin;
    end_ = end;
    participants_ = static_cast<int>(p);
    job_guard_ = guard::active_guard();
    error_ = nullptr;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  run_chunk(0);
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  body_ = nullptr;
  job_guard_ = nullptr;
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

ThreadPool& pool() {
  static ThreadPool p([] {
    const char* env = std::getenv("F3D_THREADS");
    if (env == nullptr) return 1;
    const int n = std::atoi(env);
    return n >= 1 ? std::min(n, 256) : 1;
  }());
  return p;
}

void set_threads(int num_threads) { pool().resize(num_threads); }

int num_threads() { return pool().num_threads(); }

}  // namespace f3d::exec
