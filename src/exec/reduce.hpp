#pragma once
// Deterministic parallel reductions. The naive parallel dot product sums
// each thread's range and combines in completion order — its rounding
// depends on the thread count and on scheduling, which would break the
// resilience subsystem's bit-identical checkpoint/replay guarantee the
// moment the Krylov solvers go parallel.
//
// These reductions instead split the vector into FIXED-width blocks
// (kReduceBlock elements, independent of the thread count), sum each
// block serially, and combine the block partials with a fixed-order
// pairwise tree. Threads only decide WHICH thread computes a block, never
// the arithmetic — the result is bit-identical for any thread count,
// including 1. The tree combine also carries ~log2(n/block) fewer
// rounding steps than a running sum, so accuracy slightly improves over
// the old serial kernels.

#include <cstdint>

namespace f3d::exec {

/// Fixed reduction block width (elements). Part of the numerical contract:
/// changing it changes rounding (consistently for every thread count).
/// When the SIMD build is enabled, each block is additionally strip-mined
/// into simd::kDoubleLanes-wide packs with a fixed pairwise lane combine —
/// also data-position based, so the thread-count invariance is unchanged;
/// only the scalar-vs-SIMD *configurations* round differently.
inline constexpr std::int64_t kReduceBlock = 4096;

/// sum_i x[i] * y[i], fixed-block tree order.
double dot(std::int64_t n, const double* x, const double* y);

/// sum_i x[i], fixed-block tree order.
double sum(std::int64_t n, const double* x);

/// max_i |x[i]| (exact — order-independent), computed in parallel.
double max_abs(std::int64_t n, const double* x);

}  // namespace f3d::exec
