#include "exec/reduce.hpp"

#include <cmath>
#include <vector>

#include "common/simd.hpp"
#include "exec/pool.hpp"

namespace f3d::exec {

namespace {

// Combine block partials pairwise in a fixed order: (0,1), (2,3), ... per
// round, odd tail carried. Serial — the partial count is n/kReduceBlock,
// negligible next to the block sums.
double tree_combine(std::vector<double>& p) {
  std::int64_t m = static_cast<std::int64_t>(p.size());
  while (m > 1) {
    std::int64_t k = 0;
    for (std::int64_t i = 0; i + 1 < m; i += 2) p[k++] = p[i] + p[i + 1];
    if (m % 2) p[k++] = p[m - 1];
    m = k;
  }
  return m == 1 ? p[0] : 0.0;
}

template <class BlockSum>
double blocked_reduce(std::int64_t n, const BlockSum& block_sum) {
  if (n <= 0) return 0.0;
  if (n <= kReduceBlock) return block_sum(0, n);
  const std::int64_t nblk = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<double> partial(nblk);
  pool().parallel_for(
      0, nblk,
      [&](std::int64_t blo, std::int64_t bhi) {
        for (std::int64_t b = blo; b < bhi; ++b) {
          const std::int64_t lo = b * kReduceBlock;
          const std::int64_t hi = std::min(n, lo + kReduceBlock);
          partial[b] = block_sum(lo, hi);
        }
      },
      /*grain=*/1);
  return tree_combine(partial);
}

}  // namespace

// The SIMD block sums strip-mine each fixed 4096-element block into
// 4-lane packs with a fixed pairwise lane combine, then an in-order
// scalar tail. Block boundaries are data-position based, so like the
// scalar path the result is bit-identical at any thread count; rounding
// differs only between the scalar and SIMD *configurations*.

double dot(std::int64_t n, const double* x, const double* y) {
  if (simd::enabled()) {
    return blocked_reduce(n, [&](std::int64_t lo, std::int64_t hi) {
      simd::Vd acc = simd::Vd::zero();
      std::int64_t i = lo;
      for (; i + simd::kDoubleLanes <= hi; i += simd::kDoubleLanes)
        acc += simd::Vd::loadu(x + i) * simd::Vd::loadu(y + i);
      double s = acc.hsum();
      for (; i < hi; ++i) s += x[i] * y[i];
      return s;
    });
  }
  return blocked_reduce(n, [&](std::int64_t lo, std::int64_t hi) {
    double s = 0;
    for (std::int64_t i = lo; i < hi; ++i) s += x[i] * y[i];
    return s;
  });
}

double sum(std::int64_t n, const double* x) {
  if (simd::enabled()) {
    return blocked_reduce(n, [&](std::int64_t lo, std::int64_t hi) {
      simd::Vd acc = simd::Vd::zero();
      std::int64_t i = lo;
      for (; i + simd::kDoubleLanes <= hi; i += simd::kDoubleLanes)
        acc += simd::Vd::loadu(x + i);
      double s = acc.hsum();
      for (; i < hi; ++i) s += x[i];
      return s;
    });
  }
  return blocked_reduce(n, [&](std::int64_t lo, std::int64_t hi) {
    double s = 0;
    for (std::int64_t i = lo; i < hi; ++i) s += x[i];
    return s;
  });
}

double max_abs(std::int64_t n, const double* x) {
  if (n <= 0) return 0.0;
  const std::int64_t nblk = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<double> partial(nblk, 0.0);
  pool().parallel_for(
      0, nblk,
      [&](std::int64_t blo, std::int64_t bhi) {
        for (std::int64_t b = blo; b < bhi; ++b) {
          const std::int64_t lo = b * kReduceBlock;
          const std::int64_t hi = std::min(n, lo + kReduceBlock);
          double m = 0;
          for (std::int64_t i = lo; i < hi; ++i) m = std::max(m, std::abs(x[i]));
          partial[b] = m;
        }
      },
      /*grain=*/1);
  double m = 0;
  for (double v : partial) m = std::max(m, v);
  return m;
}

}  // namespace f3d::exec
