#pragma once
// f3d::exec — the shared-memory execution layer. A dependency-free C++20
// thread pool with persistent workers and statically chunked parallel_for,
// the substrate for node-level threading of the ψNKS hot path (the
// paper's §2.5 hybrid experiment, generalized): edge-colored flux
// scatter, row-parallel SpMV, level-scheduled triangular solves, and the
// deterministic reductions of reduce.hpp all run on this pool.
//
// Determinism contract: parallel_for partitions [begin, end) into
// contiguous chunks whose boundaries depend only on the range and the
// participant count — never on scheduling or timing. Kernels built on it
// stay bit-identical for ANY thread count as long as each index's work is
// independent (disjoint writes, or exact ops like min/max); reductions
// additionally need the fixed-block tree of reduce.hpp. This is what
// preserves the resilience subsystem's byte-identical checkpoint/replay
// guarantee under threading.

#include <cstdint>
#include <functional>

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace f3d::guard {
class SolveGuard;
}

namespace f3d::exec {

class ThreadPool {
public:
  /// Spawns num_threads - 1 persistent workers (the caller participates).
  explicit ThreadPool(int num_threads = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Join all workers and respawn with the new count. Must not be called
  /// from inside a parallel_for body.
  void resize(int num_threads);
  [[nodiscard]] int num_threads() const { return nt_; }

  /// Run body(lo, hi) over a static contiguous chunking of [begin, end).
  /// The participant count is min(num_threads, ceil(n / grain)), so short
  /// ranges run inline with zero synchronization. Calls from inside a
  /// worker (nested parallelism) run the whole range inline. Exceptions
  /// thrown by the body are rethrown on the calling thread.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& body,
                    std::int64_t grain = 1024);

private:
  void spawn(int num_threads);
  void shutdown();
  void worker_loop(int id);
  void run_chunk(int id);

  int nt_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;

  // Published job (valid while a parallel_for is in flight). job_guard_
  // is the dispatching thread's active SolveGuard, installed thread-
  // locally on each worker for the duration of its chunk so cancellation
  // polls inside the body observe the driver's guard (guard/guard.hpp).
  const std::function<void(std::int64_t, std::int64_t)>* body_ = nullptr;
  std::int64_t begin_ = 0, end_ = 0;
  int participants_ = 0;
  guard::SolveGuard* job_guard_ = nullptr;
  std::exception_ptr error_;
};

/// The process-wide pool every kernel uses. Starts with 1 thread (serial)
/// unless the F3D_THREADS environment variable requests more.
ThreadPool& pool();

/// Resize the global pool.
void set_threads(int num_threads);
[[nodiscard]] int num_threads();

/// RAII thread-count override for benches and tests.
class ThreadScope {
public:
  explicit ThreadScope(int num_threads) : prev_(num_threads_saved()) {
    set_threads(num_threads);
  }
  ~ThreadScope() { set_threads(prev_); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

private:
  static int num_threads_saved() { return num_threads(); }
  int prev_;
};

}  // namespace f3d::exec
